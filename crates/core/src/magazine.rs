//! Thread-local allocation magazines in front of the lock-free sharded heap.
//!
//! PR 2 sharded the heap per size class and PR 6 made the per-op paths
//! lock-free, but a thread still pays one CAS-contended probe sequence per
//! allocation. This module adds the classic magazine layer (Bonwick's
//! vmem/slab per-CPU caches, adapted to DieHard's randomized placement):
//! each thread holds, per size class, a small **magazine** of pre-reserved
//! slots plus a bounded **free buffer**, so the hot paths touch shared cache
//! lines once per batch instead of once per operation.
//!
//! # Preserving the paper's guarantees
//!
//! DieHard's probabilistic memory safety (§3, §4.2) rests on objects being
//! placed *uniformly at random* over a region at most `1/M` full. The
//! magazine must not perturb either property:
//!
//! * **Uniform placement.** A refill does not carve a deterministic run of
//!   slots; it samples `K` slots by running the partition's own MWC probe
//!   loop ([`crate::partition::AtomicPartition::reserve_batch`]) under a single
//!   acquisition of the class's *maintenance* lock. Each reserved slot is
//!   therefore a uniform draw over the free slots, from the same per-class
//!   RNG stream the uncached heap would have used — for one thread
//!   performing only allocations, the magazine-served sequence is
//!   *bit-identical* to [`ShardedHeap`]'s for the same master seed (handout
//!   is FIFO in draw order).
//! * **The `1/M` occupancy cap.** Reserved slots take a regular ticket
//!   against the partition's `inUse`, so the threshold check bounds
//!   *live + reserved* — strictly conservative: the truly live fraction is
//!   always at or below the paper's cap.
//! * **No randomized-reuse shortcut.** The free buffer never hands a
//!   buffered slot back to the local thread; it flushes to the owning shard,
//!   where the slot rejoins the uniform probe space. Immediate deterministic
//!   reuse (what tcmalloc-style caches do) would gut the dangling-pointer
//!   protection of §3.3.
//!
//! # The reserved/live distinction
//!
//! A slot a magazine holds but has not handed out is **not live**: no
//! pointer to it has ever been returned, so `free_at` must ignore it and
//! `is_live_at` must report `false` (and heap statistics must not count it
//! as an allocation). Both states live in the partition's paired-bit
//! [`crate::bitmap::SlotStateMap`] — the separate atomic reserved overlay
//! this layer carried before the lock-free fast path is gone, because a
//! two-map encoding cannot make the lock-free free path race-free (a freeing
//! thread could check the overlay, lose the CPU while the slot is freed and
//! re-reserved, then clear a reservation it no longer owns). With the paired
//! encoding every transition is one atomic on one word:
//!
//! * free→reserved (`00 → 11`): a CAS inside [`AtomicPartition::reserve_batch`]
//!   during refill, under the class maintenance lock;
//! * reserved→live (`11 → 01`): one lock-free `fetch_and` on the owning
//!   thread (the handout — the fast path the whole layer exists for);
//! * live→free (`01 → 00`): one CAS, from the lock-free `free_at` or a
//!   free-buffer flush; a reserved slot makes the CAS fail and the free is
//!   ignored without ever consulting a second map.
//!
//! # Accounting
//!
//! [`crate::engine::AtomicHeapStats`] stays exact: a handout records one
//! alloc (the moment the application actually receives memory), a refill
//! that returns empty records one exhaustion per denied request, and a
//! free-buffer flush records its batch of frees/ignored-frees as two atomic
//! adds. Probe accounting is unchanged by batching: `reserve_batch` counts
//! draws exactly like `alloc`, so §4.2's E[probes] statistics aggregate
//! refill and direct traffic identically. Thread exit (guard drop) flushes
//! buffered frees and returns every unhanded reservation to its shard —
//! zero leaked reservations, no spurious stats.

use crate::config::{ConfigError, HeapConfig, HeapGeometry};
use crate::engine::{
    locate_free, slot_at, slot_offset, AllocOutcome, FreeOutcome, HeapStats, Slot,
};
use crate::partition::AtomicPartition;
use crate::sharded::ShardedHeap;
use crate::size_class::{SizeClass, NUM_CLASSES};

/// Maximum slots a per-class magazine holds between refills.
pub const MAG_SLOTS: usize = 8;

/// Free-buffer capacity per class; a full buffer forces a flush, a
/// half-full one flushes opportunistically (`try_lock`).
pub const FREE_SLOTS: usize = 16;

/// Refill batch size for a partition with the given `1/M` threshold: small
/// regions reserve less so a handful of threads cannot park the entire
/// allowance inside magazines.
#[inline]
fn refill_batch(threshold: usize) -> usize {
    MAG_SLOTS.min((threshold / 8).max(1))
}

/// A thread-safe DieHard heap that supports thread-local magazine caching.
///
/// Structurally this is now just a [`ShardedHeap`] — reservation state lives
/// inside the shards' paired-bit slot maps — plus the refill/flush batch
/// logic. All operations take `&self`; threads that want the cached fast
/// path create a [`MagazineCache`] via [`thread_cache`](Self::thread_cache),
/// while uncached (`alloc`/`free_at`) calls remain available, are lock-free,
/// and interleave correctly with cached traffic.
///
/// # Examples
///
/// ```
/// use diehard_core::{config::HeapConfig, magazine::MagazineHeap};
///
/// let heap = MagazineHeap::new(HeapConfig::default(), 42)?;
/// let mut cache = heap.thread_cache();
/// let slot = cache.alloc(100).expect("space available");
/// let off = heap.offset_of(slot);
/// assert!(heap.is_live_at(off));
/// cache.free_at(off);
/// drop(cache); // flushes buffered frees, returns unhanded reservations
/// assert_eq!(heap.live_objects(), 0);
/// assert_eq!(heap.reserved_slots(), 0);
/// # Ok::<(), diehard_core::config::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct MagazineHeap {
    heap: ShardedHeap,
}

impl MagazineHeap {
    /// Creates an empty magazine-capable heap; placement is driven by the
    /// same per-class RNG streams as [`ShardedHeap::new`] with this seed.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is invalid.
    pub fn new(config: HeapConfig, seed: u64) -> Result<Self, ConfigError> {
        Ok(Self {
            heap: ShardedHeap::new(config, seed)?,
        })
    }

    /// As [`new`](Self::new), but elastic: each class starts at
    /// `1 / 2^initial_fraction_log2` of its maximum capacity and doubles
    /// under `1/M`-cap pressure (see [`ShardedHeap::new_elastic`]). Refills
    /// participate in growth: an at-cap refill grows the class under the
    /// maintenance lock it already holds, and only a denial at the maximum
    /// capacity surfaces as [`AllocOutcome::Spill`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is invalid.
    pub fn new_elastic(
        config: HeapConfig,
        seed: u64,
        initial_fraction_log2: u32,
    ) -> Result<Self, ConfigError> {
        Ok(Self {
            heap: ShardedHeap::new_elastic(config, seed, initial_fraction_log2)?,
        })
    }

    /// As [`new`](Self::new), but hosting all metadata in caller-provided
    /// storage so construction performs no heap allocation — required when
    /// DieHard itself is the process's global allocator.
    ///
    /// # Safety
    ///
    /// `words` must point to at least
    /// [`metadata_words_needed`](Self::metadata_words_needed)`(&config)`
    /// zeroed `u64`s, valid and exclusively owned for the heap's lifetime.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is invalid.
    pub unsafe fn from_raw_parts(
        config: HeapConfig,
        seed: u64,
        words: *mut u64,
    ) -> Result<Self, ConfigError> {
        // SAFETY: forwarded caller contract.
        Ok(Self {
            heap: unsafe { ShardedHeap::from_raw_parts(config, seed, words) }?,
        })
    }

    /// As [`from_raw_parts`](Self::from_raw_parts) but elastic (see
    /// [`new_elastic`](Self::new_elastic)). The metadata footprint is
    /// identical — slot maps are always sized for the maximum capacity.
    ///
    /// # Safety
    ///
    /// Same contract as [`from_raw_parts`](Self::from_raw_parts).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is invalid.
    pub unsafe fn from_raw_parts_elastic(
        config: HeapConfig,
        seed: u64,
        words: *mut u64,
        initial_fraction_log2: u32,
    ) -> Result<Self, ConfigError> {
        // SAFETY: forwarded caller contract.
        Ok(Self {
            heap: unsafe {
                ShardedHeap::from_raw_parts_elastic(config, seed, words, initial_fraction_log2)
            }?,
        })
    }

    /// Number of `u64` words of metadata storage
    /// [`from_raw_parts`](Self::from_raw_parts) requires for `config` —
    /// exactly [`ShardedHeap::bitmap_words_needed`]: the paired slot-state
    /// maps already encode reservations, so the magazine layer adds **no**
    /// metadata of its own (the old separate overlay doubled this).
    #[must_use]
    pub fn metadata_words_needed(config: &HeapConfig) -> usize {
        ShardedHeap::bitmap_words_needed(config)
    }

    /// The heap's configuration (lock-free; immutable).
    #[must_use]
    pub fn config(&self) -> &HeapConfig {
        self.heap.config()
    }

    /// The heap's precomputed shift/mask geometry (lock-free; immutable).
    #[must_use]
    #[inline]
    pub fn geometry(&self) -> &HeapGeometry {
        self.heap.geometry()
    }

    /// Counters since construction (lock-free snapshot). Frees sitting in a
    /// thread's buffer are counted when that buffer flushes.
    #[must_use]
    pub fn stats(&self) -> HeapStats {
        self.heap.stats()
    }

    /// Bytes spanned by the small-object heap.
    #[must_use]
    pub fn heap_span(&self) -> usize {
        self.heap.heap_span()
    }

    /// Byte offset of `slot` within the heap span (pure arithmetic).
    #[must_use]
    #[inline]
    pub fn offset_of(&self, slot: Slot) -> usize {
        slot_offset(self.geometry(), slot)
    }

    /// Resolves a byte offset (any interior pointer) to the slot containing
    /// it (pure arithmetic).
    #[must_use]
    pub fn slot_containing(&self, offset: usize) -> Option<Slot> {
        slot_at(self.geometry(), offset)
    }

    /// A thread-local cache over this heap. Dropping the cache flushes its
    /// buffered frees and returns its unhanded reservations.
    #[must_use]
    pub fn thread_cache(&self) -> MagazineCache<'_> {
        MagazineCache {
            heap: self,
            mags: ThreadMagazines::new(),
        }
    }

    /// Uncached allocation: identical to [`ShardedHeap::alloc`] — lock-free;
    /// the probe loop skips reserved slots because their claim loses.
    pub fn alloc(&self, size: usize) -> Option<Slot> {
        self.heap.alloc(size)
    }

    /// Uncached [`alloc`](Self::alloc) with the elastic outcome surfaced
    /// (see [`ShardedHeap::try_alloc`]): a denial grows the class when the
    /// heap is elastic and below its maximum, and only a denial at the
    /// maximum capacity returns [`AllocOutcome::Spill`].
    pub fn try_alloc(&self, size: usize) -> AllocOutcome {
        self.heap.try_alloc(size)
    }

    /// Number of completed per-class doublings since construction, whether
    /// triggered by uncached allocations or magazine refills.
    #[must_use]
    pub fn growth_events(&self) -> u64 {
        self.heap.growth_events()
    }

    /// Uncached `DieHardFree` (§4.3), lock-free: validates and frees the
    /// object at `offset`. A reserved-but-unhanded slot makes the free CAS
    /// observe `Reserved` and the request is ignored (it is not live — no
    /// pointer to it was ever returned).
    pub fn free_at(&self, offset: usize) -> FreeOutcome {
        self.heap.free_at(offset)
    }

    /// Whether the object at `offset` is live — one atomic load.
    /// Reserved-but-unhanded slots report `false`.
    #[must_use]
    pub fn is_live_at(&self, offset: usize) -> bool {
        self.heap.is_live_at(offset)
    }

    /// Total live objects: partition occupancy minus magazine reservations.
    /// Exact only when the heap is quiescent (same caveat as
    /// [`ShardedHeap::live_objects`]).
    #[must_use]
    pub fn live_objects(&self) -> usize {
        SizeClass::all()
            .map(|c| {
                let p = self.heap.shard(c);
                let in_use = p.in_use();
                in_use - p.reserved_count().min(in_use)
            })
            .sum()
    }

    /// Slots currently reserved inside thread magazines across all classes
    /// (quiescence caveat as above). Zero once every cache has flushed.
    #[must_use]
    pub fn reserved_slots(&self) -> usize {
        SizeClass::all()
            .map(|c| self.heap.shard(c).reserved_count())
            .sum()
    }

    /// Cumulative probe statistics summed across every shard:
    /// `(allocations, total probes)`. Magazine refills run the partition's
    /// own probe loop ([`AtomicPartition::reserve_batch`]), so reservation
    /// draws count here exactly like direct allocations — the §4.2
    /// expectation applies to the cached stack unchanged (reserved slots
    /// hold occupancy at or below the `1/M` cap).
    #[must_use]
    pub fn probe_stats(&self) -> (u64, u64) {
        self.heap.probe_stats()
    }

    /// Runs `f` against the partition serving `class` — shard-local
    /// diagnostics, e.g. layout statistics for the sim harness's A/B runs.
    /// Note the slot-state map includes reserved slots (occupied, not
    /// live); flush caches first for live-only statistics.
    pub fn with_partition<R>(&self, class: SizeClass, f: impl FnOnce(&AtomicPartition) -> R) -> R {
        self.heap.with_partition(class, f)
    }

    /// Acquires every maintenance lock (`fork(2)` prepare); see
    /// [`ShardedHeap::lock_all_maintenance`].
    pub fn lock_all_maintenance(&self) {
        self.heap.lock_all_maintenance();
    }

    /// Releases the locks taken by
    /// [`lock_all_maintenance`](Self::lock_all_maintenance).
    ///
    /// # Safety
    ///
    /// As [`ShardedHeap::unlock_all_maintenance`]: the locks must be held
    /// via `lock_all_maintenance`.
    pub unsafe fn unlock_all_maintenance(&self) {
        // SAFETY: forwarded caller contract.
        unsafe { self.heap.unlock_all_maintenance() };
    }

    // ---- cache back end --------------------------------------------------

    /// Refills `out` with up to one batch of reserved slots for `class`,
    /// drawn by the partition's own probe loop under one acquisition of the
    /// class **maintenance** lock (the slow path — per-op traffic never
    /// waits on it; the lock only serializes refills against flushes and
    /// teardowns so batches do not interleave draws). Returns the number of
    /// slots reserved (0 when at the `1/M` cap).
    /// On an elastic heap an at-cap refill grows the class before giving
    /// up. `grow_class_locked` is called directly because this thread
    /// already holds the maintenance lock — re-entering through the public
    /// grow path would deadlock on the non-reentrant `SpinLock`. A `0` here
    /// therefore means the class is at its *maximum* capacity and full: the
    /// caller's denial is a genuine spill, not growth pressure.
    fn refill(&self, class: SizeClass, out: &mut [usize; MAG_SLOTS]) -> usize {
        let shard = self.heap.shard(class);
        let _batch = self.heap.maintenance_lock(class).lock();
        loop {
            let want = refill_batch(shard.threshold());
            let got = shard.reserve_batch(&mut out[..want]);
            if got > 0 || !self.heap.grow_class_locked(class) {
                return got;
            }
        }
    }

    /// The lock-free reserved→live handout transition: one `fetch_and` in
    /// the slot-state map plus the alloc counter.
    #[inline]
    fn commit(&self, class: SizeClass, index: usize) {
        self.heap.shard(class).commit(index);
        self.heap.stats_ref().record_alloc();
    }

    /// Releases a batch of buffered frees for `class` under one maintenance
    /// lock acquisition. With `force` false the flush is opportunistic: a
    /// contended lock leaves the buffer untouched. (Each individual free is
    /// itself a lock-free CAS — the lock only keeps maintenance batches
    /// from interleaving.)
    fn flush_frees(&self, class: SizeClass, frees: &mut [usize; FREE_SLOTS], len: &mut usize) {
        self.flush_frees_inner(class, frees, len, true);
    }

    fn try_flush_frees(&self, class: SizeClass, frees: &mut [usize; FREE_SLOTS], len: &mut usize) {
        self.flush_frees_inner(class, frees, len, false);
    }

    fn flush_frees_inner(
        &self,
        class: SizeClass,
        frees: &mut [usize; FREE_SLOTS],
        len: &mut usize,
        force: bool,
    ) {
        if *len == 0 {
            return;
        }
        let lock = self.heap.maintenance_lock(class);
        let guard = if force {
            lock.lock()
        } else {
            match lock.try_lock() {
                Some(guard) => guard,
                None => return,
            }
        };
        // The paired slot map resolves all three cases per slot in one CAS:
        // a live slot is freed; a free slot (double/invalid free) and a
        // reserved slot (an address the application never received — which
        // must not release a reservation another magazine holds) are both
        // ignored. The ticket return is one batched decrement.
        let (freed, ignored) = self.heap.shard(class).free_batch(&frees[..*len]);
        drop(guard);
        *len = 0;
        let stats = self.heap.stats_ref();
        stats.record_frees(freed);
        stats.record_ignored_frees(ignored);
    }

    /// Returns unhanded reservations to their shard (no stats: they were
    /// never allocations). Holds the maintenance lock so teardown cannot
    /// interleave with a racing refill's batch.
    fn return_reservations(&self, class: SizeClass, slots: &[usize]) {
        if slots.is_empty() {
            return;
        }
        let shard = self.heap.shard(class);
        let _batch = self.heap.maintenance_lock(class).lock();
        for &index in slots {
            let was_reserved = shard.release_reservation(index);
            debug_assert!(was_reserved, "returned slot {index} was not reserved");
        }
    }
}

/// Outcome of a cached free: either queued for a batched release or
/// resolved immediately by the lock-free span/alignment validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachedFree {
    /// The offset names a plausible slot; it is buffered and will be
    /// validated against the bitmap (double/invalid frees ignored) when the
    /// buffer flushes.
    Buffered,
    /// Validation failed without needing any shard: the offset is outside
    /// the heap ([`FreeOutcome::NotInHeap`]) or misaligned
    /// ([`FreeOutcome::MisalignedOffset`]).
    Rejected(FreeOutcome),
}

/// One size class's thread-local state: the magazine (FIFO over the refill
/// draw order, preserving the probe stream's sequence) and the free buffer.
#[derive(Debug, Clone, Copy)]
struct ClassCache {
    mag: [usize; MAG_SLOTS],
    head: usize,
    len: usize,
    frees: [usize; FREE_SLOTS],
    flen: usize,
}

impl ClassCache {
    const EMPTY: Self = Self {
        mag: [0; MAG_SLOTS],
        head: 0,
        len: 0,
        frees: [0; FREE_SLOTS],
        flen: 0,
    };
}

/// The per-thread magazine state for all twelve classes.
///
/// Deliberately a plain, `const`-constructible value with **no heap-backed
/// members and no `Drop` impl**: the global allocator keeps one of these in
/// ELF thread-local storage, where construction and access must never
/// allocate (any allocation would re-enter the allocator being served) and
/// where `std`'s lazy TLS destructor machinery must not be triggered.
/// Callers that want automatic cleanup wrap it in a [`MagazineCache`] guard;
/// the global allocator flushes via a `pthread` key destructor instead.
#[derive(Debug)]
pub struct ThreadMagazines {
    classes: [ClassCache; NUM_CLASSES],
}

impl ThreadMagazines {
    /// An empty set of magazines (usable in `const`/TLS contexts).
    #[must_use]
    pub const fn new() -> Self {
        Self {
            classes: [ClassCache::EMPTY; NUM_CLASSES],
        }
    }

    /// `true` when no reservations are held and no frees are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.classes.iter().all(|c| c.len == 0 && c.flen == 0)
    }

    /// Allocates `size` bytes through this thread's magazine, refilling from
    /// `heap` (one shard-lock acquisition per batch) when empty. Returns
    /// `None` for zero/oversized requests or when the class is at its `1/M`
    /// cap — each denied request records one exhaustion, like the uncached
    /// path.
    pub fn alloc(&mut self, heap: &MagazineHeap, size: usize) -> Option<Slot> {
        self.try_alloc(heap, size).placed()
    }

    /// [`alloc`](Self::alloc) with the elastic outcome surfaced:
    /// zero/oversized requests are [`AllocOutcome::Unsupported`] (nothing
    /// recorded — the large-object path's business), while an empty refill
    /// is [`AllocOutcome::Spill`]. On an elastic heap the refill has already
    /// grown the class to its maximum before reporting empty, so `Spill`
    /// always means "the `1/M` cap at full size", exactly like the uncached
    /// [`MagazineHeap::try_alloc`].
    pub fn try_alloc(&mut self, heap: &MagazineHeap, size: usize) -> AllocOutcome {
        let Some(class) = SizeClass::for_size(size) else {
            return AllocOutcome::Unsupported;
        };
        let cache = &mut self.classes[class.index()];
        if cache.len == 0 {
            let drawn = heap.refill(class, &mut cache.mag);
            if drawn == 0 {
                heap.heap.stats_ref().record_exhausted();
                return AllocOutcome::Spill;
            }
            cache.head = 0;
            cache.len = drawn;
        }
        let index = cache.mag[cache.head];
        cache.head += 1;
        cache.len -= 1;
        heap.commit(class, index);
        AllocOutcome::Placed(Slot { class, index })
    }

    /// Frees the object at `offset` through this thread's buffer. The
    /// lock-free [`locate_free`] arithmetic rejects out-of-span and
    /// misaligned offsets immediately; plausible slots are buffered per
    /// class and released in batches (opportunistically at half capacity,
    /// forced at full capacity).
    pub fn free_at(&mut self, heap: &MagazineHeap, offset: usize) -> CachedFree {
        let slot = match locate_free(heap.geometry(), offset) {
            Ok(slot) => slot,
            Err(outcome) => {
                if outcome == FreeOutcome::MisalignedOffset {
                    heap.heap.stats_ref().record_ignored_free();
                }
                return CachedFree::Rejected(outcome);
            }
        };
        let cache = &mut self.classes[slot.class.index()];
        cache.frees[cache.flen] = slot.index;
        cache.flen += 1;
        if cache.flen == FREE_SLOTS {
            heap.flush_frees(slot.class, &mut cache.frees, &mut cache.flen);
        } else if cache.flen >= FREE_SLOTS / 2 {
            heap.try_flush_frees(slot.class, &mut cache.frees, &mut cache.flen);
        }
        CachedFree::Buffered
    }

    /// Flushes everything: buffered frees are released (stats recorded) and
    /// unhanded reservations are returned to their shards (no stats). The
    /// thread-exit path.
    pub fn flush(&mut self, heap: &MagazineHeap) {
        for (i, cache) in self.classes.iter_mut().enumerate() {
            let class = SizeClass::from_index(i);
            heap.flush_frees(class, &mut cache.frees, &mut cache.flen);
            let held = &cache.mag[cache.head..cache.head + cache.len];
            heap.return_reservations(class, held);
            cache.head = 0;
            cache.len = 0;
        }
    }

    /// Drops all cached state without touching any heap. Only for the case
    /// where the owning heap is already gone (the global allocator's TLS
    /// rebinding after a heap was dropped); on a live heap this would leak
    /// reservations — use [`flush`](Self::flush).
    pub fn discard(&mut self) {
        self.classes = [ClassCache::EMPTY; NUM_CLASSES];
    }
}

impl Default for ThreadMagazines {
    fn default() -> Self {
        Self::new()
    }
}

/// A guard coupling a [`ThreadMagazines`] to its heap: the ergonomic façade
/// for threads using `&MagazineHeap` directly (benches, the sim harness's
/// A/B runs, tests). Dropping it flushes — the in-process analogue of the
/// global allocator's thread-exit flush.
#[derive(Debug)]
pub struct MagazineCache<'h> {
    heap: &'h MagazineHeap,
    mags: ThreadMagazines,
}

impl MagazineCache<'_> {
    /// Allocates `size` bytes through the magazine
    /// (see [`ThreadMagazines::alloc`]).
    pub fn alloc(&mut self, size: usize) -> Option<Slot> {
        self.mags.alloc(self.heap, size)
    }

    /// Allocates with the elastic outcome surfaced
    /// (see [`ThreadMagazines::try_alloc`]).
    pub fn try_alloc(&mut self, size: usize) -> AllocOutcome {
        self.mags.try_alloc(self.heap, size)
    }

    /// Frees the object at `offset` through the buffer
    /// (see [`ThreadMagazines::free_at`]).
    pub fn free_at(&mut self, offset: usize) -> CachedFree {
        self.mags.free_at(self.heap, offset)
    }

    /// Flushes buffered frees and returns unhanded reservations now, without
    /// consuming the cache.
    pub fn flush(&mut self) {
        self.mags.flush(self.heap);
    }
}

impl Drop for MagazineCache<'_> {
    fn drop(&mut self) {
        self.mags.flush(self.heap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HeapCore;
    use proptest::prelude::*;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn heap(seed: u64) -> MagazineHeap {
        MagazineHeap::new(HeapConfig::default(), seed).unwrap()
    }

    /// For one thread performing only allocations, the magazine serves the
    /// exact slot sequence the sharded heap would have: refills run the same
    /// probe loop on the same per-class stream, and handout is FIFO.
    #[test]
    fn alloc_only_sequence_matches_sharded_exactly() {
        let mag = heap(0xABCD);
        let sharded = ShardedHeap::new(HeapConfig::default(), 0xABCD).unwrap();
        let mut cache = mag.thread_cache();
        for req in [8usize, 8, 24, 100, 1000, 4000, 16_000, 8, 64, 100, 100] {
            assert_eq!(cache.alloc(req), sharded.alloc(req), "request {req}");
        }
    }

    #[test]
    fn reserved_slots_are_not_live() {
        let h = heap(7);
        let mut cache = h.thread_cache();
        let slot = cache.alloc(64).unwrap();
        let handed = h.offset_of(slot);
        // The refill reserved a whole batch; everything but the handed-out
        // slot is reserved-not-live.
        let batch = refill_batch(h.config().threshold(slot.class));
        assert!(batch > 1, "test needs a multi-slot refill");
        assert_eq!(h.reserved_slots(), batch - 1);
        assert_eq!(h.live_objects(), 1);
        assert!(h.is_live_at(handed));

        let reserved_idx = h
            .with_partition(slot.class, |p| {
                p.occupied_slots().find(|&i| i != slot.index)
            })
            .expect("a reserved slot exists");
        let reserved_off = h.offset_of(Slot {
            class: slot.class,
            index: reserved_idx,
        });
        assert!(
            !h.is_live_at(reserved_off),
            "reserved slot must not be live"
        );
        assert_eq!(
            h.free_at(reserved_off),
            FreeOutcome::NotAllocated,
            "freeing a reserved slot is an invalid free"
        );
        let stats = h.stats();
        assert_eq!(stats.allocs, 1, "only the handout counts");
        assert_eq!(stats.ignored_frees, 1);
        assert_eq!(stats.frees, 0);

        // The ignored free must not have released the reservation: the next
        // handouts still come from the intact magazine.
        for _ in 1..batch {
            let s = cache.alloc(64).unwrap();
            assert!(h.is_live_at(h.offset_of(s)));
        }
        assert_eq!(h.reserved_slots(), 0);
    }

    #[test]
    fn drop_returns_reservations_and_flushes_frees() {
        let h = heap(3);
        let mut offs = Vec::new();
        {
            let mut cache = h.thread_cache();
            for _ in 0..5 {
                offs.push(h.offset_of(cache.alloc(256).unwrap()));
            }
            // Buffer two frees below the opportunistic-flush threshold.
            cache.free_at(offs[0]);
            cache.free_at(offs[1]);
            assert_eq!(h.stats().frees, 0, "frees still buffered");
        }
        // Guard dropped: frees flushed, reservations returned.
        assert_eq!(h.stats().frees, 2);
        assert_eq!(h.reserved_slots(), 0);
        assert_eq!(h.live_objects(), 3);
        for &off in &offs[2..] {
            assert!(h.free_at(off).freed());
        }
        assert_eq!(h.live_objects(), 0);
        let stats = h.stats();
        assert_eq!(stats.allocs, 5);
        assert_eq!(stats.frees, 5);
        assert_eq!(stats.ignored_frees, 0);
    }

    #[test]
    fn full_free_buffer_forces_flush() {
        let h = heap(11);
        let mut cache = h.thread_cache();
        let offs: Vec<usize> = (0..FREE_SLOTS)
            .map(|_| h.offset_of(cache.alloc(8).unwrap()))
            .collect();
        for &off in &offs {
            assert_eq!(cache.free_at(off), CachedFree::Buffered);
        }
        // The buffer hit capacity at least once (opportunistic flushes may
        // have drained it earlier too — single-threaded, try_lock succeeds).
        assert_eq!(h.stats().frees, FREE_SLOTS as u64);
    }

    #[test]
    fn double_free_through_buffer_is_ignored_exactly_once() {
        let h = heap(13);
        let mut cache = h.thread_cache();
        let off = h.offset_of(cache.alloc(128).unwrap());
        cache.free_at(off);
        cache.free_at(off);
        cache.flush();
        let stats = h.stats();
        assert_eq!(stats.frees, 1);
        assert_eq!(stats.ignored_frees, 1);
        assert_eq!(h.live_objects(), 0);
    }

    #[test]
    fn rejected_frees_do_not_enter_the_buffer() {
        let h = heap(17);
        let mut cache = h.thread_cache();
        let off = h.offset_of(cache.alloc(64).unwrap());
        assert_eq!(
            cache.free_at(off + 1),
            CachedFree::Rejected(FreeOutcome::MisalignedOffset)
        );
        assert_eq!(
            cache.free_at(usize::MAX / 2),
            CachedFree::Rejected(FreeOutcome::NotInHeap)
        );
        cache.flush();
        let stats = h.stats();
        assert_eq!(
            stats.ignored_frees, 1,
            "misaligned counts, not-in-heap does not"
        );
        assert_eq!(stats.frees, 0);
        assert!(h.is_live_at(off), "victim object untouched");
    }

    #[test]
    fn exhaustion_is_counted_per_denied_request() {
        // 32 KB regions: the 16 KB class has capacity 2, threshold 1.
        let cfg = HeapConfig::default().with_region_bytes(32 * 1024);
        let h = MagazineHeap::new(cfg, 19).unwrap();
        let mut cache = h.thread_cache();
        assert!(cache.alloc(16 * 1024).is_some());
        assert!(cache.alloc(16 * 1024).is_none());
        assert!(cache.alloc(16 * 1024).is_none());
        let stats = h.stats();
        assert_eq!(stats.allocs, 1);
        assert_eq!(stats.exhausted, 2);
    }

    /// Elastic refills grow the class under the maintenance lock they
    /// already hold: the cached stack absorbs a max-capacity workload from
    /// a 1/64 start and spills — not crashes — past the final `1/M` cap.
    #[test]
    fn elastic_refills_grow_then_spill() {
        let h = MagazineHeap::new_elastic(HeapConfig::default(), 0x1A57, 6).unwrap();
        let mut cache = h.thread_cache();
        // 16 KB class: max capacity 64 (threshold 32), starting at 2.
        let mut placed = 0usize;
        loop {
            match cache.try_alloc(16 * 1024) {
                AllocOutcome::Placed(_) => placed += 1,
                AllocOutcome::Spill => break,
                AllocOutcome::Unsupported => panic!("16 KB is a supported class"),
            }
        }
        assert_eq!(placed, 32, "full-size 1/M allowance served");
        assert!(h.growth_events() >= 5, "2 -> 64 takes five doublings");
        assert_eq!(cache.try_alloc(16 * 1024), AllocOutcome::Spill);
        assert_eq!(cache.try_alloc(0), AllocOutcome::Unsupported);
        let stats = h.stats();
        assert_eq!(stats.allocs, 32);
        assert_eq!(stats.exhausted, 2, "each denied request counted once");
    }

    /// Single-threaded alloc-only histories are bit-identical between the
    /// elastic magazine stack and the elastic sharded heap: refills grow at
    /// exactly the same pressure points and growth consumes no RNG draws.
    #[test]
    fn elastic_alloc_sequence_matches_elastic_sharded() {
        let mag = MagazineHeap::new_elastic(HeapConfig::default(), 0xE1A5, 6).unwrap();
        let sharded = ShardedHeap::new_elastic(HeapConfig::default(), 0xE1A5, 6).unwrap();
        let mut cache = mag.thread_cache();
        for i in 0..2000usize {
            let req = 1 + (i * 37) % 1024;
            assert_eq!(cache.alloc(req), sharded.alloc(req), "request {i}");
        }
    }

    #[test]
    fn cached_and_uncached_traffic_interleave() {
        let h = heap(23);
        let mut cache = h.thread_cache();
        let a = cache.alloc(64).unwrap();
        let b = h.alloc(64).unwrap();
        assert_ne!(a, b, "uncached alloc cannot receive a reserved slot");
        assert!(h.is_live_at(h.offset_of(a)));
        assert!(h.is_live_at(h.offset_of(b)));
        assert!(h.free_at(h.offset_of(b)).freed());
        cache.free_at(h.offset_of(a));
        cache.flush();
        assert_eq!(h.live_objects(), 0);
        let stats = h.stats();
        assert_eq!(stats.allocs, 2);
        assert_eq!(stats.frees, 2);
    }

    /// Satellite: alloc on thread A, free on thread B, thread-exit flush
    /// with zero leaked reservations, stats reconciled against a `HeapCore`
    /// shadow run of the same logical operation sequence.
    #[test]
    fn cross_thread_traffic_flushes_and_reconciles() {
        const N: usize = 500;
        let h = Arc::new(heap(0xC0DE));
        // Sizes stay ≤ 1 KB: the producer may run far ahead of the consumer
        // on one CPU, so every class it touches must hold its share of all N
        // objects (uniform byte sizes put half the requests in the top
        // class) plus reservations below its 1/M threshold — the 1 KB class
        // allows 512 live, the 16 KB class only 32.
        let sizes: Vec<usize> = {
            let mut rng = crate::rng::Mwc::seeded(0xC0DE);
            (0..N).map(|_| 1 + rng.below(1024)).collect()
        };
        let (tx, rx) = std::sync::mpsc::channel::<usize>();

        let producer = {
            let h = Arc::clone(&h);
            let sizes = sizes.clone();
            std::thread::spawn(move || {
                let mut cache = h.thread_cache();
                for &sz in &sizes {
                    let slot = cache.alloc(sz).expect("default heap is ample");
                    tx.send(h.offset_of(slot)).unwrap();
                }
                // cache drops here: thread-exit flush
            })
        };
        let consumer = {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                let mut cache = h.thread_cache();
                for off in rx {
                    assert_eq!(cache.free_at(off), CachedFree::Buffered);
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();

        assert_eq!(h.reserved_slots(), 0, "zero leaked reservations");
        assert_eq!(h.live_objects(), 0);
        let stats = h.stats();

        // Shadow run: the same logical sequence (every alloc later freed)
        // through the single-threaded facade must produce identical
        // counters.
        let mut shadow = HeapCore::new(HeapConfig::default(), 0xC0DE).unwrap();
        let mut offs = Vec::new();
        for &sz in &sizes {
            let slot = shadow.alloc(sz).unwrap();
            offs.push(shadow.offset_of(slot));
        }
        for off in offs {
            assert!(shadow.free_at(off).freed());
        }
        assert_eq!(
            stats,
            shadow.stats(),
            "magazine stats reconcile with shadow"
        );
    }

    /// The ISSUE's 8-thread stress: every class, cross-checked attempted vs
    /// served vs exhausted, with exact accounting after all caches flush.
    #[test]
    fn stress_eight_threads_exact_stats() {
        const THREADS: u64 = 8;
        const OPS: usize = 2500;
        let h = Arc::new(heap(0x57E55));
        let served = Arc::new(AtomicU64::new(0));
        let attempted = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            let served = Arc::clone(&served);
            let attempted = Arc::clone(&attempted);
            handles.push(std::thread::spawn(move || {
                let mut cache = h.thread_cache();
                let mut rng = crate::rng::Mwc::seeded(0xF00D ^ t);
                let mut live: Vec<usize> = Vec::new();
                for _ in 0..OPS {
                    let size = 1 + rng.below(16 * 1024);
                    attempted.fetch_add(1, Ordering::Relaxed);
                    if let Some(slot) = cache.alloc(size) {
                        served.fetch_add(1, Ordering::Relaxed);
                        live.push(h.offset_of(slot));
                    }
                    if live.len() > 32 {
                        let victim = live.swap_remove(rng.below(live.len()));
                        assert_eq!(cache.free_at(victim), CachedFree::Buffered);
                    }
                }
                for off in live {
                    assert_eq!(cache.free_at(off), CachedFree::Buffered);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let stats = h.stats();
        assert_eq!(h.reserved_slots(), 0, "all reservations returned");
        assert_eq!(h.live_objects(), 0, "all served objects freed");
        assert_eq!(stats.allocs, served.load(Ordering::Relaxed));
        assert_eq!(stats.frees, stats.allocs, "each alloc freed exactly once");
        assert_eq!(stats.ignored_frees, 0);
        assert_eq!(
            stats.exhausted,
            attempted.load(Ordering::Relaxed) - served.load(Ordering::Relaxed),
            "every failed attempt was an at-threshold denial"
        );
    }

    /// §4.2 through the magazine layer: refills sample slots with the
    /// partition's own probe loop, and reserved slots count toward the
    /// `1/M` cap, so the E[probes] = 1/(1 − 1/M) expectation holds for the
    /// cached stack too. Buffered frees let occupancy dip a few dozen slots
    /// under the cap, so the tolerance is a little wider than the sharded
    /// heap's.
    #[test]
    fn probe_expectation_holds_through_magazines() {
        const THREADS: usize = 4;
        const OPS: usize = 20_000;
        let h = Arc::new(heap(0x9E0E));
        let mut offs = Vec::new();
        while let Some(slot) = h.alloc(8) {
            offs.push(h.offset_of(slot));
        }
        // Headroom for in-flight reservations (up to MAG_SLOTS per thread)
        // plus buffered frees.
        for off in offs.drain(..THREADS * (MAG_SLOTS + FREE_SLOTS)) {
            assert!(h.free_at(off).freed());
        }
        let (a0, p0) = h.probe_stats();
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                let mut cache = h.thread_cache();
                for _ in 0..OPS {
                    if let Some(slot) = cache.alloc(8) {
                        cache.free_at(h.offset_of(slot));
                    }
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let (a1, p1) = h.probe_stats();
        assert!(a1 - a0 > (THREADS * OPS) as u64 / 2, "churn mostly served");
        let mean = (p1 - p0) as f64 / (a1 - a0) as f64;
        assert!(
            mean > 1.5 && mean < 2.2,
            "magazine steady-state probes {mean}, expected ≈ 2"
        );
    }

    proptest! {
        /// Shadow-model proptest: cached allocs/frees plus uncached bogus
        /// frees keep the heap consistent with an offset-keyed model.
        #[test]
        fn magazine_matches_shadow_model(
            seed in any::<u64>(),
            ops in proptest::collection::vec((0usize..3, 1usize..20_000), 1..300),
        ) {
            let h = heap(seed);
            let mut cache = h.thread_cache();
            let mut model: HashMap<usize, Slot> = HashMap::new();
            // Offsets freed through the cache; a slot stays in here after
            // its buffer flushes (we deliberately do not mirror the flush
            // schedule), so membership means "was cache-freed at some point
            // and not re-served since".
            let mut cache_freed: std::collections::HashSet<usize> =
                std::collections::HashSet::new();
            let mut rng = crate::rng::Mwc::seeded(seed ^ 0xABCD);
            for (op, arg) in ops {
                match op {
                    0 => {
                        if let Some(slot) = cache.alloc(arg.min(16 * 1024)) {
                            let off = h.offset_of(slot);
                            prop_assert!(!model.contains_key(&off),
                                "offset reuse while live");
                            cache_freed.remove(&off);
                            model.insert(off, slot);
                        }
                    }
                    1 => {
                        if !model.is_empty() {
                            let keys: Vec<usize> = model.keys().copied().collect();
                            let off = keys[rng.below(keys.len())];
                            prop_assert_eq!(cache.free_at(off), CachedFree::Buffered);
                            model.remove(&off);
                            cache_freed.insert(off);
                        }
                    }
                    _ => {
                        // Bogus uncached free at a random offset: must never
                        // free a live object the model doesn't know about.
                        let off = rng.below(h.heap_span() + 1000);
                        if let FreeOutcome::Freed(_) = h.free_at(off) {
                            if model.remove(&off).is_none() {
                                // The only other way a slot can be released
                                // here is a cache-freed slot whose buffered
                                // entry has not flushed yet. Flush now so
                                // the stale buffer entry cannot later kill a
                                // re-served object (the double-free hazard
                                // DieHard only defends probabilistically).
                                prop_assert!(cache_freed.remove(&off),
                                    "freed an object the model did not know");
                                cache.flush();
                            }
                        }
                    }
                }
            }
            cache.flush();
            prop_assert_eq!(h.live_objects(), model.len());
            prop_assert_eq!(h.reserved_slots(), 0);
        }
    }
}
