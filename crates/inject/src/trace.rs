//! The tracing allocator's allocation log (§7.3.1).
//!
//! "We first run the application with a tracing allocator that generates an
//! allocation log. Whenever an object is freed, the library outputs a pair,
//! indicating when the object was allocated and when it was freed (in
//! allocation time). We then sort the log by allocation time."
//!
//! Our programs are op streams, so tracing is a replay that counts
//! allocations; the log drives the dangling-pointer injector exactly as the
//! paper's sorted log drives theirs. A line-based text serialization is
//! provided so logs can be saved and inspected like the original tool's.

use diehard_runtime::ops::{Op, Program};

/// One allocated object's lifetime in allocation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocRecord {
    /// The program handle.
    pub id: u32,
    /// Requested size in bytes.
    pub size: usize,
    /// Allocation time: number of allocations before this one.
    pub alloc_time: u64,
    /// Allocation time at which the object was freed (`None` = never).
    pub free_time: Option<u64>,
    /// Op index of the `Alloc`.
    pub alloc_op: usize,
    /// Op index of the first `Free` for this handle.
    pub free_op: Option<usize>,
}

/// A complete allocation log, sorted by allocation time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllocLog {
    /// Records in allocation order.
    pub records: Vec<AllocRecord>,
}

impl AllocLog {
    /// Traces `program`, producing its allocation log.
    #[must_use]
    pub fn trace(program: &Program) -> Self {
        let mut records: Vec<AllocRecord> = Vec::new();
        let mut index_of: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        let mut alloc_clock: u64 = 0;
        for (op_idx, op) in program.ops.iter().enumerate() {
            match op {
                Op::Alloc { id, size } => {
                    index_of.insert(*id, records.len());
                    records.push(AllocRecord {
                        id: *id,
                        size: *size,
                        alloc_time: alloc_clock,
                        free_time: None,
                        alloc_op: op_idx,
                        free_op: None,
                    });
                    alloc_clock += 1;
                }
                Op::Free { id } => {
                    if let Some(&ri) = index_of.get(id) {
                        let rec = &mut records[ri];
                        if rec.free_time.is_none() {
                            rec.free_time = Some(alloc_clock);
                            rec.free_op = Some(op_idx);
                        }
                    }
                }
                _ => {}
            }
        }
        Self { records }
    }

    /// Number of allocations in the log.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the traced program allocated nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serializes to the log's line format:
    /// `id alloc_time free_time size` with `-` for never-freed.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for r in &self.records {
            let free = r
                .free_time
                .map_or_else(|| "-".to_string(), |t| t.to_string());
            s.push_str(&format!("{} {} {} {}\n", r.id, r.alloc_time, free, r.size));
        }
        s
    }

    /// Parses the [`to_text`](Self::to_text) format. Op indices are not
    /// representable in the text form and come back as defaults.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut records = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let mut next = |what: &str| {
                parts
                    .next()
                    .ok_or_else(|| format!("line {}: missing {what}", ln + 1))
            };
            let id: u32 = next("id")?
                .parse()
                .map_err(|e| format!("line {}: bad id: {e}", ln + 1))?;
            let alloc_time: u64 = next("alloc_time")?
                .parse()
                .map_err(|e| format!("line {}: bad alloc_time: {e}", ln + 1))?;
            let free_raw = next("free_time")?;
            let free_time = if free_raw == "-" {
                None
            } else {
                Some(
                    free_raw
                        .parse()
                        .map_err(|e| format!("line {}: bad free_time: {e}", ln + 1))?,
                )
            };
            let size: usize = next("size")?
                .parse()
                .map_err(|e| format!("line {}: bad size: {e}", ln + 1))?;
            records.push(AllocRecord {
                id,
                size,
                alloc_time,
                free_time,
                alloc_op: 0,
                free_op: None,
            });
        }
        Ok(Self { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program() -> Program {
        Program::new(
            "t",
            vec![
                Op::Alloc { id: 0, size: 64 },  // t=0
                Op::Alloc { id: 1, size: 128 }, // t=1
                Op::Free { id: 0 },             // freed at t=2
                Op::Forget { id: 0 },
                Op::Alloc { id: 2, size: 8 }, // t=2
                Op::Free { id: 2 },           // freed at t=3
                Op::Forget { id: 2 },
                Op::Alloc { id: 3, size: 16 }, // t=3, never freed
            ],
        )
    }

    #[test]
    fn trace_captures_lifetimes() {
        let log = AllocLog::trace(&program());
        assert_eq!(log.len(), 4);
        assert_eq!(log.records[0].alloc_time, 0);
        assert_eq!(log.records[0].free_time, Some(2));
        assert_eq!(log.records[1].free_time, None, "id 1 never freed");
        assert_eq!(log.records[2].free_time, Some(3));
        assert_eq!(log.records[3].free_time, None);
    }

    #[test]
    fn trace_is_sorted_by_alloc_time() {
        let log = AllocLog::trace(&program());
        for w in log.records.windows(2) {
            assert!(w[0].alloc_time < w[1].alloc_time);
        }
    }

    #[test]
    fn double_free_in_program_records_first_only() {
        let prog = Program::new(
            "df",
            vec![
                Op::Alloc { id: 0, size: 8 }, // t=0
                Op::Free { id: 0 },
                Op::Alloc { id: 1, size: 8 }, // t=1
                Op::Free { id: 0 },           // duplicate: ignored by trace
            ],
        );
        let log = AllocLog::trace(&prog);
        assert_eq!(log.records[0].free_time, Some(1));
    }

    #[test]
    fn text_roundtrip() {
        let log = AllocLog::trace(&program());
        let text = log.to_text();
        let parsed = AllocLog::from_text(&text).unwrap();
        assert_eq!(parsed.len(), log.len());
        for (a, b) in log.records.iter().zip(&parsed.records) {
            assert_eq!(
                (a.id, a.size, a.alloc_time, a.free_time),
                (b.id, b.size, b.alloc_time, b.free_time)
            );
        }
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(AllocLog::from_text("1 2").is_err());
        assert!(AllocLog::from_text("x 0 - 8").is_err());
        assert!(AllocLog::from_text("").unwrap().is_empty());
    }
}
