//! Collection strategies: `vec` and `hash_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// A range of collection sizes (mirrors proptest's `SizeRange`).
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    // Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `HashSet<S::Value>`; duplicates collapse, so the set may
/// come out smaller than the drawn size (same contract as proptest).
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let n = self.size.pick(rng);
        let mut out = HashSet::with_capacity(n);
        for _ in 0..n {
            out.insert(self.element.sample(rng));
        }
        out
    }
}

/// Generates hash sets whose elements come from `element`.
pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S> {
    HashSetStrategy {
        element,
        size: size.into(),
    }
}
