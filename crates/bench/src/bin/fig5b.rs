//! Figure 5(b): normalized runtime on "Windows XP" — the default allocator
//! versus stand-alone DieHard on the allocation-intensive suite.
//!
//! The paper found DieHard *at parity or faster* on Windows because "the
//! default Windows XP allocator is substantially slower than the Lea
//! allocator" (§7.2.2). Our Windows baseline reproduces that design point
//! (single address-ordered best-fit free list), so the same reversal should
//! appear.
//!
//! Run: `cargo run --release -p diehard-bench --bin fig5b [scale]`

use diehard_baselines::WindowsSimAllocator;
use diehard_bench::{geomean, measured_seconds, norm, TextTable};
use diehard_core::config::HeapConfig;
use diehard_runtime::{run_program, ExecOptions};
use diehard_sim::{DieHardSimHeap, SimAllocator};
use diehard_workloads::alloc_intensive_suite;

const BASELINE_SPAN: usize = 256 << 20;

fn main() {
    let scale: f64 = diehard_bench::positional_args()
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| diehard_bench::smoke_scaled(0.25, 0.02));
    println!("Figure 5(b) — Runtime on Windows (normalized to the default malloc)");
    println!("(workload scale {scale}; mean of 5 runs after 1 warm-up)\n");

    let mut table = TextTable::new(vec!["benchmark", "malloc", "DieHard", "DH speedup"]);
    let mut norms = Vec::new();
    for profile in alloc_intensive_suite() {
        let prog = profile.generate(scale, 0x5165B);
        let win_secs = measured_seconds(1, 5, || {
            let mut a = WindowsSimAllocator::new(BASELINE_SPAN);
            let _ = run_program(&mut a, &prog, &ExecOptions::default());
            let _ = a.work();
        });
        let dh_secs = measured_seconds(1, 5, || {
            let mut a = DieHardSimHeap::new(HeapConfig::default(), 0xD1E).unwrap();
            let _ = run_program(&mut a, &prog, &ExecOptions::default());
        });
        let n = dh_secs / win_secs;
        table.row(vec![
            profile.name.to_string(),
            norm(1.0),
            norm(n),
            format!("{:+.1}%", (1.0 / n - 1.0) * 100.0),
        ]);
        norms.push(n);
    }
    table.row(vec![
        "GEOMEAN".to_string(),
        norm(1.0),
        norm(geomean(&norms)),
        String::new(),
    ]);
    println!("{}", table.render());
    println!(
        "Paper shape: against the slow Windows default allocator, DieHard's\n\
         geomean is ≈ 1.00x — effectively free, and faster on several\n\
         benchmarks (roboop +19%, espresso +8.2%, cfrac +6.4%)."
    );
}
