//! # diehard-workloads
//!
//! Deterministic workloads reproducing the paper's benchmark suite:
//!
//! * [`profile`] — allocation-profile-driven generators for the five
//!   allocation-intensive benchmarks (cfrac, espresso, lindsay, p2c,
//!   roboop) and twelve SPECint2000-like programs (§7.1–7.2), including
//!   lindsay's genuine uninitialized-read bug and twolf's wide
//!   size-class spread;
//! * [`squid`] — the miniature Squid web cache with the real overflow-
//!   via-unbounded-`strcpy` bug pattern (§7.3.2);
//! * [`server`] — a deterministic server-style echo/produce trace (shell
//!   server, request generator, exact expected output) for exercising the
//!   §5 streaming voter on long-running interactive workloads;
//! * [`client`] — the matching TCP client driver (write-then-read
//!   protocol, slow-reader pacing, mid-stream abandonment) for the
//!   replicated proxy's loopback tests and benches.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod profile;
pub mod server;
pub mod squid;

pub use client::{abandon_mid_stream, drive, Pace};
pub use profile::{alloc_intensive_suite, profile_by_name, spec_suite, Profile, SizeDist};
pub use server::{expected_output, request_stream, ServerRequest, SERVER_SCRIPT};
