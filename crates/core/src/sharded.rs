//! The sharded DieHard heap: a lock-free per-op path over shared-nothing
//! partition shards, with per-class locks demoted to slow-path maintenance.
//!
//! The paper's allocator (§4.2) is embarrassingly partitionable: each of the
//! twelve size-class regions owns its slot-state map, its `1/M` threshold,
//! and its probe loop, and `DieHardFree`'s validation resolves any offset to
//! exactly one region with pure arithmetic. [`ShardedHeap`] exploits that
//! structure twice over. First, shards share nothing: every
//! [`AtomicPartition`] has its private CAS-advanced RNG stream (seeded by
//! splitting the master seed), so operations in *different* classes never
//! touch the same cache lines. Second, **no per-op path takes a lock at
//! all**: an allocation draws a probe index and claims the slot with one
//! `fetch_or` (retrying the draw on a lost race, exactly like re-probing an
//! occupied slot), and a free validates with lock-free arithmetic
//! ([`locate_free`]) and clears the slot with one CAS. The per-class
//! [`SpinLock`]s survive only as *maintenance locks* for slow-path batches —
//! magazine refills, free-buffer flushes, reservation teardown — where one
//! acquisition amortizes over many slots and mutual exclusion among
//! *maintainers* (not allocators) is the point.
//!
//! Determinism under the lock-free path — the pinned contended-retry rule:
//!
//! * single-threaded histories are **bit-identical** to the locked stack and
//!   to [`HeapCore`](crate::engine::HeapCore) for the same master seed (same
//!   RNG stream, same shift draw, same win/lose per probe);
//! * under contention the placement *sequence* may diverge from any serial
//!   replay — concurrent threads interleave one RNG stream and a lost claim
//!   redraws — but every placement remains a uniformly random free slot,
//!   accounting stays exact, and probe statistics count draws identically to
//!   the locked path (each draw is one probe, whether it loses to an
//!   occupied slot or to a racing claimant).
//!
//! The isolation property that makes the decomposition sound is DieHard's
//! own: a (validated) free in one region can never mutate another region's
//! metadata, so shards compose without any ordering discipline — no
//! operation ever takes two maintenance locks at once.

use crate::bitmap::SlotState;
use crate::config::{ConfigError, HeapConfig, HeapGeometry};
use crate::engine::{
    build_atomic_partitions, build_atomic_partitions_from_storage, locate_free, slot_at,
    slot_offset, AllocOutcome, AtomicHeapStats, FreeOutcome, HeapStats, Slot,
};
use crate::partition::AtomicPartition;
use crate::size_class::{SizeClass, NUM_CLASSES};
use crate::sync::SpinLock;
use core::sync::atomic::{AtomicU64, Ordering};

/// A thread-safe DieHard heap whose alloc and free paths are lock-free; one
/// maintenance lock per size class guards slow-path batches only.
///
/// All operations take `&self`; the heap is `Sync` and designed to be
/// shared across threads (the real global allocator embeds one behind its
/// once-initialized header).
///
/// # Examples
///
/// ```
/// use diehard_core::{config::HeapConfig, sharded::ShardedHeap};
///
/// let heap = ShardedHeap::new(HeapConfig::default(), 42)?;
/// let slot = heap.alloc(100).expect("space available");
/// assert_eq!(slot.size(), 128);
/// let off = heap.offset_of(slot);
/// assert!(heap.is_live_at(off));
/// assert!(heap.free_at(off).freed());
/// assert!(!heap.free_at(off).freed()); // double free: ignored
/// # Ok::<(), diehard_core::config::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct ShardedHeap {
    geometry: HeapGeometry,
    shards: [AtomicPartition; NUM_CLASSES],
    /// Slow-path mutual exclusion per class: magazine refills, free-buffer
    /// flushes, and reservation teardown serialize against each other here.
    /// **Never taken by `alloc`/`free_at`/`is_live_at`** — the per-op paths
    /// are lock-free by construction, and the slot-state map's atomics keep
    /// them correct against in-flight maintenance.
    maintenance: [SpinLock<()>; NUM_CLASSES],
    stats: AtomicHeapStats,
    /// Number of completed per-class doublings (elastic heaps; always 0 on
    /// fixed heaps).
    growths: AtomicU64,
}

impl ShardedHeap {
    /// Creates an empty sharded heap; shard `i` probes with the RNG stream
    /// `stream_seed(seed, i)`, so one master seed reproduces the layout.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is invalid.
    pub fn new(config: HeapConfig, seed: u64) -> Result<Self, ConfigError> {
        Self::from_geometry(HeapGeometry::new(config)?, seed)
    }

    /// Creates an *elastic* sharded heap: each class starts at
    /// `1 / 2^initial_fraction_log2` of its maximum capacity and doubles
    /// lock-free-readably under `1/M`-cap pressure until the maximum, after
    /// which [`try_alloc`](Self::try_alloc) reports
    /// [`AllocOutcome::Spill`] instead of hard-failing. Slot layout is
    /// computed against the maximum capacity from day one, so growth moves
    /// no object and changes no offset arithmetic.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is invalid.
    pub fn new_elastic(
        config: HeapConfig,
        seed: u64,
        initial_fraction_log2: u32,
    ) -> Result<Self, ConfigError> {
        Self::from_geometry(
            HeapGeometry::new_elastic(config, initial_fraction_log2)?,
            seed,
        )
    }

    fn from_geometry(geometry: HeapGeometry, seed: u64) -> Result<Self, ConfigError> {
        let shards = build_atomic_partitions(&geometry, seed);
        Ok(Self {
            geometry,
            shards,
            maintenance: core::array::from_fn(|_| SpinLock::new(())),
            stats: AtomicHeapStats::new(),
            growths: AtomicU64::new(0),
        })
    }

    /// As [`new`](Self::new), but hosting all twelve slot-state maps in
    /// caller-provided storage so that construction performs **no heap
    /// allocation** — required when DieHard itself is the process's global
    /// allocator (metadata lives in a segregated mmap arena, §4.1).
    ///
    /// # Safety
    ///
    /// `bitmap_words` must point to at least
    /// [`bitmap_words_needed`](Self::bitmap_words_needed)`(&config)` zeroed
    /// `u64`s, valid and exclusively owned for the heap's lifetime.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is invalid.
    pub unsafe fn from_raw_parts(
        config: HeapConfig,
        seed: u64,
        bitmap_words: *mut u64,
    ) -> Result<Self, ConfigError> {
        let geometry = HeapGeometry::new(config)?;
        // SAFETY: forwarded caller contract.
        unsafe { Self::from_geometry_raw(geometry, seed, bitmap_words) }
    }

    /// As [`from_raw_parts`] but elastic (see [`new_elastic`](Self::new_elastic)).
    /// The metadata footprint is identical — slot maps are always sized for
    /// the maximum capacity — so
    /// [`bitmap_words_needed`](Self::bitmap_words_needed) applies unchanged.
    ///
    /// # Safety
    ///
    /// Same contract as [`from_raw_parts`](Self::from_raw_parts).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is invalid.
    pub unsafe fn from_raw_parts_elastic(
        config: HeapConfig,
        seed: u64,
        bitmap_words: *mut u64,
        initial_fraction_log2: u32,
    ) -> Result<Self, ConfigError> {
        let geometry = HeapGeometry::new_elastic(config, initial_fraction_log2)?;
        // SAFETY: forwarded caller contract.
        unsafe { Self::from_geometry_raw(geometry, seed, bitmap_words) }
    }

    unsafe fn from_geometry_raw(
        geometry: HeapGeometry,
        seed: u64,
        bitmap_words: *mut u64,
    ) -> Result<Self, ConfigError> {
        // SAFETY: forwarded caller contract.
        let shards = unsafe { build_atomic_partitions_from_storage(&geometry, seed, bitmap_words) };
        Ok(Self {
            geometry,
            shards,
            maintenance: core::array::from_fn(|_| SpinLock::new(())),
            stats: AtomicHeapStats::new(),
            growths: AtomicU64::new(0),
        })
    }

    /// Number of `u64` words of metadata storage
    /// [`from_raw_parts`](Self::from_raw_parts) requires for `config`: two
    /// bits per slot (live + reserved), 32 slots per word — twice the
    /// facade's one-bit bitmap, but it *absorbs* the magazine layer's old
    /// separate reserved overlay, so the stack's total is unchanged.
    #[must_use]
    pub fn bitmap_words_needed(config: &HeapConfig) -> usize {
        (0..NUM_CLASSES)
            .map(|i| AtomicPartition::words_needed(config.capacity(SizeClass::from_index(i))))
            .sum()
    }

    /// The heap's configuration (lock-free; the config is immutable).
    #[must_use]
    pub fn config(&self) -> &HeapConfig {
        self.geometry.config()
    }

    /// The heap's precomputed shift/mask geometry (lock-free; immutable).
    #[must_use]
    #[inline]
    pub fn geometry(&self) -> &HeapGeometry {
        &self.geometry
    }

    /// Counters since construction (lock-free snapshot).
    #[must_use]
    pub fn stats(&self) -> HeapStats {
        self.stats.snapshot()
    }

    /// Bytes spanned by the small-object heap (12 × region size).
    #[must_use]
    pub fn heap_span(&self) -> usize {
        self.geometry.heap_span()
    }

    /// Allocates `size` bytes — the lock-free fast path: a ticket against
    /// the `1/M` cap, then probe draws claimed by `fetch_or`, no lock in any
    /// branch. Returns `None` when the request is zero, larger than 16 KB
    /// (large-object path), or the class region is at its `1/M` cap.
    ///
    /// On an elastic heap a denial first grows the class (see
    /// [`try_alloc`](Self::try_alloc)); only a denial at the *maximum*
    /// capacity becomes `None`.
    #[inline]
    pub fn alloc(&self, size: usize) -> Option<Slot> {
        self.try_alloc(size).placed()
    }

    /// [`alloc`](Self::alloc) with the elastic outcome surfaced: a denial at
    /// the `1/M` cap grows the class (doubling, under the class's
    /// maintenance lock) and retries, until a denial at the maximum capacity
    /// returns [`AllocOutcome::Spill`] — the routable "spill elsewhere"
    /// signal, recorded as an exhaustion in the heap stats. On fixed heaps
    /// the growth check is one relaxed load (capacity is already maximal),
    /// so the fast path is unchanged.
    #[inline]
    pub fn try_alloc(&self, size: usize) -> AllocOutcome {
        let Some(class) = SizeClass::for_size(size) else {
            return AllocOutcome::Unsupported;
        };
        loop {
            if let Some(index) = self.shards[class.index()].alloc() {
                self.stats.record_alloc();
                return AllocOutcome::Placed(Slot { class, index });
            }
            if !self.grow_class(class) {
                self.stats.record_exhausted();
                return AllocOutcome::Spill;
            }
        }
    }

    /// Number of completed per-class doublings since construction.
    #[must_use]
    pub fn growth_events(&self) -> u64 {
        self.growths.load(Ordering::Relaxed)
    }

    /// Attempts one growth step for `class`; `false` means the class is
    /// already at its maximum capacity (time to spill), `true` means the
    /// caller should retry its allocation — either this call doubled the
    /// active capacity or a racing free already made room.
    fn grow_class(&self, class: SizeClass) -> bool {
        let shard = &self.shards[class.index()];
        if shard.capacity() >= self.geometry.capacity(class) {
            return false;
        }
        let _guard = self.maintenance[class.index()].lock();
        self.grow_class_locked(class)
    }

    /// The body of [`grow_class`] for callers that already hold `class`'s
    /// maintenance lock (the magazine refill path — re-locking would
    /// deadlock on the non-reentrant `SpinLock`). Doubles the active
    /// capacity with the exact-integer `1/M` threshold for the new size;
    /// skips the doubling (but still reports "retry") when a racing free
    /// dropped the shard below its cap while we waited for the lock.
    pub(crate) fn grow_class_locked(&self, class: SizeClass) -> bool {
        let shard = &self.shards[class.index()];
        let capacity = shard.capacity();
        let max = self.geometry.capacity(class);
        if capacity >= max {
            return false;
        }
        if !shard.at_threshold() {
            // A concurrent free (or a finished grower) made room between
            // our denial and the lock: retry without spending a doubling.
            return true;
        }
        let new_capacity = (capacity * 2).min(max);
        let new_threshold = self.geometry.config().threshold_for(new_capacity).max(1);
        shard.grow_to(new_capacity, new_threshold);
        self.growths.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Byte offset of `slot` within the heap span (pure arithmetic, no
    /// lock).
    #[must_use]
    #[inline]
    pub fn offset_of(&self, slot: Slot) -> usize {
        slot_offset(&self.geometry, slot)
    }

    /// Resolves a byte offset (any interior pointer) to the slot containing
    /// it (pure arithmetic, no lock).
    #[must_use]
    pub fn slot_containing(&self, offset: usize) -> Option<Slot> {
        slot_at(&self.geometry, offset)
    }

    /// `DieHardFree` (§4.3), fully lock-free: the span and alignment checks
    /// are pure arithmetic and the slot clear is one CAS. A slot observed
    /// free (double/invalid free) or magazine-reserved (not yet handed out)
    /// is ignored, per the paper's contract.
    #[inline]
    pub fn free_at(&self, offset: usize) -> FreeOutcome {
        let slot = match locate_free(&self.geometry, offset) {
            Ok(slot) => slot,
            Err(outcome) => {
                if outcome == FreeOutcome::MisalignedOffset {
                    self.stats.record_ignored_free();
                }
                return outcome;
            }
        };
        match self.shards[slot.class.index()].free(slot.index) {
            SlotState::Live => {
                self.stats.record_free();
                FreeOutcome::Freed(slot)
            }
            SlotState::Free | SlotState::Reserved => {
                self.stats.record_ignored_free();
                FreeOutcome::NotAllocated
            }
        }
    }

    /// Whether the object at `offset` (any interior pointer) is live —
    /// one atomic load, no lock. Magazine-reserved slots are not live.
    #[must_use]
    pub fn is_live_at(&self, offset: usize) -> bool {
        match slot_at(&self.geometry, offset) {
            Some(slot) => self.shards[slot.class.index()].is_live(slot.index),
            None => false,
        }
    }

    /// The lock-free partition serving `class` — the magazine layer reserves
    /// and releases slots against a shard directly.
    #[inline]
    pub(crate) fn shard(&self, class: SizeClass) -> &AtomicPartition {
        &self.shards[class.index()]
    }

    /// The slow-path maintenance lock for `class`. Batch operations (refill,
    /// flush, teardown) hold it so maintainers serialize with each other;
    /// the per-op paths never touch it.
    #[inline]
    pub(crate) fn maintenance_lock(&self, class: SizeClass) -> &SpinLock<()> {
        &self.maintenance[class.index()]
    }

    /// Acquires every per-class maintenance lock, in class-index order —
    /// the `fork(2)` prepare path: with all twelve held, no batch operation
    /// (refill, flush, growth, teardown) is mid-flight anywhere, so the
    /// child inherits shard metadata that is batch-consistent. Per-op CAS
    /// traffic is not (and cannot be) excluded; an in-flight reservation
    /// ticket in the forking parent can leak a bounded number of slots in
    /// the child, which is availability, not corruption.
    ///
    /// Release with [`unlock_all_maintenance`](Self::unlock_all_maintenance)
    /// in both the parent and the child.
    pub fn lock_all_maintenance(&self) {
        for lock in &self.maintenance {
            lock.raw_lock();
        }
    }

    /// Releases the locks taken by
    /// [`lock_all_maintenance`](Self::lock_all_maintenance).
    ///
    /// # Safety
    ///
    /// The locks must be held via `lock_all_maintenance` (by this thread,
    /// or — in a fork child — by the thread the process forked from).
    pub unsafe fn unlock_all_maintenance(&self) {
        for lock in &self.maintenance {
            // SAFETY: forwarded caller contract, one unlock per lock taken.
            unsafe { lock.raw_unlock() };
        }
    }

    /// The heap-wide atomic counters, shared with wrappers (the magazine
    /// layer records handouts and batched frees into the same stats so the
    /// aggregate numbers stay exact whichever path served an operation).
    #[inline]
    pub(crate) fn stats_ref(&self) -> &AtomicHeapStats {
        &self.stats
    }

    /// Runs `f` against the partition serving `class` — shard-local
    /// diagnostics. No lock: the partition's own atomics make reads safe,
    /// with the usual not-a-snapshot caveat under concurrent traffic.
    pub fn with_partition<R>(&self, class: SizeClass, f: impl FnOnce(&AtomicPartition) -> R) -> R {
        f(&self.shards[class.index()])
    }

    /// Total occupied objects across all regions (live plus any
    /// magazine-reserved slots, which count toward `1/M`). Lock-free reads;
    /// an instantaneous total only when the heap is quiescent.
    #[must_use]
    pub fn live_objects(&self) -> usize {
        self.shards.iter().map(AtomicPartition::in_use).sum()
    }

    /// Cumulative probe statistics summed across every shard:
    /// `(allocations, total probes)` — the concurrent-stack counterpart of
    /// [`crate::partition::Partition::probe_stats`], so §4.2's
    /// E[probes] = 1/(1 − 1/M) claim is checkable on the lock-free heap too.
    /// CAS-retry probes are counted exactly like occupied-slot probes (one
    /// draw = one probe). Exact totals once the threads touching the heap
    /// are joined.
    #[must_use]
    pub fn probe_stats(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(allocs, probes), shard| {
            let (a, p) = shard.probe_stats();
            (allocs + a, probes + p)
        })
    }

    /// Total occupied bytes across all regions (rounded object sizes); same
    /// quiescence caveat as [`live_objects`](Self::live_objects).
    #[must_use]
    pub fn live_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|p| p.in_use() * p.class().object_size())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HeapCore;
    use proptest::prelude::*;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn heap(seed: u64) -> ShardedHeap {
        ShardedHeap::new(HeapConfig::default(), seed).unwrap()
    }

    #[test]
    fn matches_facade_layout_for_same_seed() {
        // The facade and the sharded heap split the master seed the same
        // way, so single-threaded histories coincide exactly — the
        // lock-free claim wins first try whenever the locked try_set would.
        let sharded = heap(0xABCD);
        let mut facade = HeapCore::new(HeapConfig::default(), 0xABCD).unwrap();
        for req in [8usize, 8, 24, 100, 1000, 4000, 16_000, 8, 64] {
            assert_eq!(sharded.alloc(req), facade.alloc(req), "request {req}");
        }
        assert_eq!(sharded.stats(), facade.stats());
    }

    #[test]
    fn free_validation_pipeline() {
        let h = heap(4);
        let slot = h.alloc(64).unwrap();
        let off = h.offset_of(slot);

        assert_eq!(h.free_at(off + 1), FreeOutcome::MisalignedOffset);
        assert!(h.is_live_at(off));
        assert_eq!(h.free_at(off), FreeOutcome::Freed(slot));
        assert!(!h.is_live_at(off));
        assert_eq!(h.free_at(off), FreeOutcome::NotAllocated);
        assert_eq!(h.free_at(usize::MAX / 2), FreeOutcome::NotInHeap);

        let stats = h.stats();
        assert_eq!(stats.frees, 1);
        assert_eq!(stats.ignored_frees, 2);
    }

    #[test]
    fn concurrent_mixed_class_churn_keeps_accounting_exact() {
        const THREADS: usize = 8;
        const OPS: usize = 3000;
        let h = Arc::new(heap(7));
        let allocated = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            let allocated = Arc::clone(&allocated);
            handles.push(std::thread::spawn(move || {
                let mut live: Vec<usize> = Vec::new();
                let mut rng = crate::rng::Mwc::seeded(0x1000 + t as u64);
                for _ in 0..OPS {
                    let size = 1 + rng.below(16 * 1024);
                    if let Some(slot) = h.alloc(size) {
                        allocated.fetch_add(1, Ordering::Relaxed);
                        live.push(h.offset_of(slot));
                    }
                    if live.len() > 32 {
                        let victim = live.swap_remove(rng.below(live.len()));
                        assert!(h.free_at(victim).freed(), "own offset must free");
                    }
                }
                for off in live {
                    assert!(h.free_at(off).freed());
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let stats = h.stats();
        assert_eq!(h.live_objects(), 0);
        assert_eq!(stats.allocs, allocated.load(Ordering::Relaxed) as u64);
        assert_eq!(
            stats.frees, stats.allocs,
            "every alloc was freed exactly once"
        );
        assert_eq!(stats.ignored_frees, 0);
    }

    /// §4.2 on the lock-free stack: with the 8-byte class held essentially
    /// at its `1/M` cap and four threads churning alloc/free pairs, the
    /// measured mean probes per allocation approaches 1/(1 − 1/M) = 2 for
    /// M = 2. CAS-retry probes count like any other failed probe, so the
    /// statistic stays comparable to the locked-path runs.
    #[test]
    fn concurrent_probe_expectation_matches_paper() {
        const THREADS: usize = 4;
        const OPS: usize = 20_000;
        let h = Arc::new(heap(0xE1E1));
        // Fill class 0 to its threshold, then free a sliver of headroom so
        // the churn below oscillates just under the cap.
        let mut offs = Vec::new();
        while let Some(slot) = h.alloc(8) {
            offs.push(h.offset_of(slot));
        }
        for off in offs.drain(..THREADS * 4) {
            assert!(h.free_at(off).freed());
        }
        let (a0, p0) = h.probe_stats();
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    // A momentary at-threshold denial (another thread's
                    // alloc in flight) just skips the pair.
                    if let Some(slot) = h.alloc(8) {
                        assert!(h.free_at(h.offset_of(slot)).freed());
                    }
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let (a1, p1) = h.probe_stats();
        assert!(a1 - a0 > (THREADS * OPS) as u64 / 2, "churn mostly served");
        let mean = (p1 - p0) as f64 / (a1 - a0) as f64;
        assert!(
            (mean - 2.0).abs() < 0.2,
            "concurrent steady-state probes {mean}, expected ≈ 2"
        );
    }

    /// The pinned contended-retry divergence rule, positive half: an
    /// alloc-only sequence on one thread is bit-identical to the facade even
    /// when *other* classes are being hammered concurrently — contention
    /// only reorders draws within a class's own stream, never across
    /// classes.
    #[test]
    fn alloc_only_determinism_isolated_per_class() {
        const SEED: u64 = 0x05EE_DCA5;
        let mut facade = HeapCore::new(HeapConfig::default(), SEED).unwrap();
        let expected: Vec<Option<Slot>> = (0..500).map(|_| facade.alloc(8)).collect();

        let h = Arc::new(heap(SEED));
        let stop = Arc::new(AtomicUsize::new(0));
        let got = std::thread::scope(|s| {
            // Background churn in a different size class (1 KB objects).
            let noise = {
                let h = Arc::clone(&h);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    while stop.load(Ordering::Relaxed) == 0 {
                        if let Some(slot) = h.alloc(1000) {
                            assert!(h.free_at(h.offset_of(slot)).freed());
                        }
                    }
                })
            };
            let got: Vec<Option<Slot>> = (0..500).map(|_| h.alloc(8)).collect();
            stop.store(1, Ordering::Relaxed);
            noise.join().unwrap();
            got
        });
        assert_eq!(
            got, expected,
            "class-0 placements diverged under cross-class noise"
        );
    }

    #[test]
    fn elastic_heap_grows_then_spills_gracefully() {
        // 16 KB class: max capacity 64, elastic start 2 (threshold 1). The
        // heap must absorb the full fixed-size workload (32 slots under
        // M = 2) by doubling, then report Spill — not a crash — past the
        // final cap.
        let h = ShardedHeap::new_elastic(HeapConfig::default(), 0x57A7, 6).unwrap();
        let mut placed = 0u64;
        let spilled = loop {
            match h.try_alloc(16 * 1024) {
                AllocOutcome::Placed(slot) => {
                    assert!(slot.index < 64);
                    placed += 1;
                }
                AllocOutcome::Spill => break true,
                AllocOutcome::Unsupported => unreachable!("16 KB is a small object"),
            }
        };
        assert!(spilled);
        assert_eq!(placed, 32, "same capacity as a fixed heap after growth");
        assert_eq!(h.growth_events(), 5, "2 → 4 → 8 → 16 → 32 → 64");
        assert_eq!(h.stats().exhausted, 1, "growth denials are not exhaustion");
        assert_eq!(h.stats().allocs, 32);
        // Outcomes are stable and routable, and zero-size stays unsupported
        // with no stats recorded.
        assert_eq!(h.try_alloc(16 * 1024), AllocOutcome::Spill);
        assert_eq!(h.try_alloc(0), AllocOutcome::Unsupported);
        assert_eq!(h.stats().exhausted, 2);
    }

    #[test]
    fn fixed_heap_never_grows() {
        let h = heap(0xF1);
        let mut last = None;
        while let Some(slot) = h.alloc(16 * 1024) {
            last = Some(slot);
        }
        assert!(last.is_some());
        assert_eq!(h.growth_events(), 0);
        assert_eq!(h.try_alloc(16 * 1024), AllocOutcome::Spill);
    }

    proptest! {
        /// The lock-free sharded heap matches the same shadow model as the
        /// facade (mirrors `engine_matches_shadow_model`) — the satellite
        /// proptest that atomic slot state tracks a `HeapCore`-style model
        /// through mixed alloc/free traffic.
        #[test]
        fn sharded_matches_shadow_model(
            seed in any::<u64>(),
            ops in proptest::collection::vec((0usize..3, 1usize..20_000), 1..300),
        ) {
            let h = heap(seed);
            let mut model: HashMap<usize, Slot> = HashMap::new();
            let mut rng = crate::rng::Mwc::seeded(seed ^ 0xABCD);
            for (op, arg) in ops {
                match op {
                    0 => {
                        if let Some(slot) = h.alloc(arg.min(16 * 1024)) {
                            let off = h.offset_of(slot);
                            prop_assert!(!model.contains_key(&off), "offset reuse while live");
                            model.insert(off, slot);
                        }
                    }
                    1 => {
                        if !model.is_empty() {
                            let keys: Vec<usize> = model.keys().copied().collect();
                            let off = keys[rng.below(keys.len())];
                            prop_assert!(h.free_at(off).freed());
                            model.remove(&off);
                        }
                    }
                    _ => {
                        let off = rng.below(h.heap_span() + 1000);
                        let before = h.live_objects();
                        match h.free_at(off) {
                            FreeOutcome::Freed(_) => {
                                prop_assert!(model.remove(&off).is_some(),
                                    "freed an object the model did not know");
                            }
                            _ => prop_assert_eq!(h.live_objects(), before),
                        }
                    }
                }
                prop_assert_eq!(h.live_objects(), model.len());
            }
        }
    }
}
