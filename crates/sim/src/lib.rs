//! # diehard-sim
//!
//! The simulated memory substrate for the DieHard (PLDI 2006) reproduction.
//!
//! The paper's evaluation observes real C programs crashing, hanging, or
//! silently corrupting memory under injected and natural heap errors. To
//! reproduce those experiments safely and deterministically, this crate
//! provides:
//!
//! * [`arena::PagedArena`] — a sparse byte-addressed address space in which
//!   **in-bounds overflow writes really corrupt neighbouring data** (no
//!   Rust-level protection gets in the way), while unmapped/guarded accesses
//!   surface as [`fault::Fault`] values instead of killing the process;
//! * [`traits::SimAllocator`] — the allocator interface implemented by
//!   DieHard and every baseline it is compared against;
//! * [`DieHardSimHeap`] — DieHard itself over the arena, sharing the exact
//!   placement engine with the real `GlobalAlloc` allocator;
//! * [`InfiniteHeap`] — the paper's §3 idealized heap, used as the
//!   ground-truth oracle: a run is *correct* iff its output matches the
//!   infinite-heap run.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
pub mod diehard_heap;
pub mod fault;
pub mod infinite;
pub mod traits;

pub use arena::{FillPattern, PagedArena, PAGE_SIZE};
pub use diehard_heap::DieHardSimHeap;
pub use fault::Fault;
pub use infinite::InfiniteHeap;
pub use traits::{Addr, SimAllocator};
