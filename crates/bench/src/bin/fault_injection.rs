//! §7.3.1: the fault-injection campaign on espresso.
//!
//! * **Dangling pointers**: "frequency of 50% with distance 10: one out of
//!   every two objects is freed ten allocations too early. This high error
//!   rate prevents espresso from running to completion with the default
//!   allocator in all runs. However, with DieHard, espresso runs correctly
//!   in 9 out of 10 runs."
//! * **Buffer overflows**: "1% rate ... under-allocating object requests of
//!   32 bytes or more by 4 bytes. With the default allocator, espresso
//!   crashes in 9 out of 10 runs and enters an infinite loop in the tenth.
//!   With DieHard, it runs successfully in all 10 of 10 runs."
//!
//! Substitution note (documented in DESIGN.md): our Lea model rounds chunks
//!   to 16 bytes without dlmalloc's borrowed-footer trick, so a 4-byte
//!   under-allocation is absorbed by rounding; the experiment uses one
//!   16-byte granule instead, which exercises the identical code path
//!   (app writes past the usable chunk end, onto the next boundary tag).
//!
//! Run: `cargo run --release -p diehard-bench --bin fault_injection [dangling|overflow] [runs]`

use diehard_bench::TextTable;
use diehard_core::config::HeapConfig;
use diehard_inject::{inject, Injection};
use diehard_runtime::System;
use diehard_workloads::profile_by_name;

const SCALE: f64 = 0.05;

fn campaign(name: &str, injection: &Injection, runs: u64) -> TextTable {
    let espresso = profile_by_name("espresso").expect("espresso profile");
    // The paper's default configuration: a 384 MB DieHard heap.
    let dh_config = HeapConfig::paper_default();
    let mut table = TextTable::new(vec!["run", "default allocator", "DieHard"]);
    let (mut libc_ok, mut dh_ok) = (0u64, 0u64);
    for run in 0..runs {
        let prog = espresso.generate(diehard_bench::smoke_scaled(SCALE, 0.01), 0xE59 + run);
        let bad = inject(&prog, injection, 0x1A2B + run);
        let libc_v = System::Libc.evaluate(&bad);
        let dh_v = System::DieHard {
            config: dh_config.clone(),
            seed: 0xD1E + run,
        }
        .evaluate(&bad);
        if libc_v.is_correct() {
            libc_ok += 1;
        }
        if dh_v.is_correct() {
            dh_ok += 1;
        }
        table.row(vec![
            (run + 1).to_string(),
            libc_v.to_string(),
            dh_v.to_string(),
        ]);
    }
    table.row(vec![
        "TOTAL correct".to_string(),
        format!("{libc_ok}/{runs}"),
        format!("{dh_ok}/{runs}"),
    ]);
    println!("== {name} ==");
    table
}

fn main() {
    let positional = diehard_bench::positional_args();
    let which = positional.first().cloned().unwrap_or_else(|| "all".into());
    let runs: u64 = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| diehard_bench::smoke_scaled(10, 3));
    println!("§7.3.1 — Fault injection on espresso ({runs} runs each)\n");

    if which == "dangling" || which == "all" {
        let t = campaign(
            "Dangling pointers: 50% of frees, 10 allocations early",
            &Injection::Dangling {
                frequency: 0.5,
                distance: 10,
            },
            runs,
        );
        println!("{}", t.render());
        println!("Paper: default allocator 0/10; DieHard 9/10.\n");
    }
    if which == "overflow" || which == "all" {
        let t = campaign(
            "Buffer overflows: 1% of allocations ≥ 32 B under-allocated by one granule",
            &Injection::Underflow {
                rate: 0.01,
                min_size: 32,
                shrink_by: 16,
            },
            runs,
        );
        println!("{}", t.render());
        println!("Paper: default allocator 0/10 (9 crashes + 1 infinite loop); DieHard 10/10.");
    }
}
