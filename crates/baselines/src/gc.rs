//! A Boehm-Demers-Weiser-style conservative mark-sweep collector.
//!
//! The paper's second baseline (§7.2.1, Table 1): a collector that ignores
//! `free`, reclaims by conservative tracing, and therefore eliminates
//! invalid frees, double frees, and dangling-pointer *reclamation* errors —
//! at the cost of extra space and collection pauses, and with **no**
//! protection against buffer overflows (objects are packed contiguously and
//! free-list links live inside free objects, both corruptible).
//!
//! Faithful structural choices:
//!
//! * small objects are carved from 4 KB blocks of a single size class with
//!   **no per-object headers** — an overflow runs straight into the
//!   neighbouring object, which is why Squid-with-BDW still crashes (§7.3);
//! * free lists are threaded **through the arena** (BDW's `GC_build_fl`
//!   writes the links into the free objects themselves), so overflows can
//!   corrupt them — heap metadata overwrites remain "undefined" (Table 1);
//! * sweeping *rebuilds* each block's free list from unmarked objects, the
//!   way BDW's reclaim phase does, so double frees cannot poison the lists
//!   (frees are ignored entirely);
//! * marking is conservative: any aligned word in a root or a reachable
//!   object that falls inside a heap object retains that object, interior
//!   pointers included.

use diehard_sim::arena::{PagedArena, PAGE_SIZE};
use diehard_sim::fault::Fault;
use diehard_sim::traits::{Addr, SimAllocator};
use std::collections::BTreeMap;

/// Small-object size classes (bytes): 16-byte granules then powers of two,
/// mirroring BDW's granule-based sizing.
const CLASSES: [usize; 12] = [16, 32, 48, 64, 96, 128, 192, 256, 512, 1024, 2048, 4096];

/// One block of the collected heap.
#[derive(Debug)]
struct Block {
    base: usize,
    /// Object size; blocks are single-class like BDW's `hblk`s.
    class: usize,
    /// Number of objects in the block (1 for large blocks).
    count: usize,
    /// Mark bits, rebuilt every collection (held out-of-band, like BDW's
    /// block headers which live outside the object stream).
    marks: Vec<bool>,
}

impl Block {
    fn len(&self) -> usize {
        self.class * self.count
    }

    fn contains(&self, addr: usize) -> bool {
        addr >= self.base && addr < self.base + self.len()
    }
}

/// The conservative collector.
#[derive(Debug)]
pub struct BdwGcSim {
    arena: PagedArena,
    blocks: BTreeMap<usize, Block>,
    /// Per-class free-list heads; the links are in the arena.
    free_lists: [Addr; CLASSES.len()],
    brk: usize,
    max_span: usize,
    bytes_since_gc: usize,
    heap_bytes: usize,
    collections: u64,
    ignored_frees: u64,
    work: u64,
    live_bytes_estimate: usize,
}

impl BdwGcSim {
    /// Creates a collector with at most `max_span` bytes of heap.
    #[must_use]
    pub fn new(max_span: usize) -> Self {
        let mut arena = PagedArena::new(0);
        arena.set_limit(PAGE_SIZE); // reserve low addresses; 0 = null
        Self {
            arena,
            blocks: BTreeMap::new(),
            free_lists: [0; CLASSES.len()],
            brk: PAGE_SIZE,
            max_span,
            bytes_since_gc: 0,
            heap_bytes: 0,
            collections: 0,
            ignored_frees: 0,
            work: 0,
            live_bytes_estimate: 0,
        }
    }

    /// Number of collections performed so far.
    #[must_use]
    pub fn collections(&self) -> u64 {
        self.collections
    }

    /// Frees the mutator issued that the collector (by design) ignored.
    #[must_use]
    pub fn ignored_frees(&self) -> u64 {
        self.ignored_frees
    }

    /// Total heap bytes in blocks (the GC's space overhead shows up here).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.heap_bytes
    }

    fn class_index(size: usize) -> Option<usize> {
        CLASSES.iter().position(|&c| c >= size)
    }

    /// Maps an address (interior allowed) to its containing object's base.
    fn find_object(&self, addr: usize) -> Option<(usize, usize)> {
        let (_, block) = self.blocks.range(..=addr).next_back()?;
        if !block.contains(addr) {
            return None;
        }
        let index = (addr - block.base) / block.class;
        Some((block.base, index))
    }

    fn carve_block(&mut self, ci: usize) -> Result<bool, Fault> {
        let class = CLASSES[ci];
        let block_len = if class >= PAGE_SIZE { class } else { PAGE_SIZE };
        if self.brk + block_len > self.max_span {
            return Ok(false);
        }
        let base = self.brk;
        self.brk += block_len;
        self.arena.set_limit(self.brk);
        let count = block_len / class;
        self.blocks.insert(
            base,
            Block {
                base,
                class,
                count,
                marks: vec![false; count],
            },
        );
        self.heap_bytes += block_len;
        // GC_build_fl: thread every object onto the class free list.
        for i in (0..count).rev() {
            let obj = base + i * class;
            self.arena.write_u64(obj, self.free_lists[ci] as u64)?;
            self.free_lists[ci] = obj;
            self.work += 1;
        }
        Ok(true)
    }

    fn alloc_large(&mut self, size: usize, roots: &[Addr]) -> Result<Option<Addr>, Fault> {
        let len = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        if self.should_collect() {
            self.collect(roots)?;
        }
        if self.brk + len > self.max_span {
            self.collect(roots)?;
            // Large-object address space is bump-allocated; dead large
            // blocks free heap *budget* but not address space, so failure
            // here models genuine exhaustion.
            if self.brk + len > self.max_span {
                return Ok(None);
            }
        }
        let base = self.brk;
        self.brk += len;
        self.arena.set_limit(self.brk);
        self.blocks.insert(
            base,
            Block {
                base,
                class: len,
                count: 1,
                marks: vec![false],
            },
        );
        self.heap_bytes += len;
        self.bytes_since_gc += len;
        Ok(Some(base))
    }

    fn should_collect(&self) -> bool {
        // BDW's GC_free_space_divisor-style trigger: collect once the bytes
        // allocated since the last collection rival a third of the heap
        // (never more often than once per megabyte, so young heaps grow
        // rather than thrash).
        self.bytes_since_gc > (self.heap_bytes / 3).max(1 << 20)
    }

    /// Conservative mark phase from `roots`, then rebuild all free lists
    /// from unmarked objects (the reclaim phase).
    ///
    /// # Errors
    ///
    /// Faults only if the arena itself fails (never in normal operation;
    /// mark state is out-of-band).
    pub fn collect(&mut self, roots: &[Addr]) -> Result<(), Fault> {
        self.collections += 1;
        // Clear marks.
        for block in self.blocks.values_mut() {
            for m in &mut block.marks {
                *m = false;
            }
        }
        // Mark from roots, tracing conservatively through object contents.
        let mut worklist: Vec<usize> = Vec::new();
        for &r in roots {
            if let Some(key) = self.mark_addr(r) {
                worklist.push(key);
            }
        }
        let mut scan_buf: Vec<u8> = Vec::new();
        while let Some(packed) = worklist.pop() {
            let (base, index) = (packed >> 20, packed & 0xF_FFFF);
            let (obj, class) = {
                let block = &self.blocks[&(base << 12)];
                (block.base + index * block.class, block.class)
            };
            // Scan the object's words for things that look like pointers
            // (one arena read per object, then an in-buffer word walk).
            scan_buf.resize(class, 0);
            self.arena.read(obj, &mut scan_buf)?;
            for chunk in scan_buf.chunks_exact(8) {
                self.work += 1;
                let word = u64::from_ne_bytes(chunk.try_into().expect("8 bytes")) as usize;
                if word >= PAGE_SIZE && word < self.brk {
                    if let Some(key) = self.mark_addr(word) {
                        worklist.push(key);
                    }
                }
            }
        }
        // Reclaim: rebuild every class free list from unmarked objects.
        self.free_lists = [0; CLASSES.len()];
        let mut live = 0usize;
        let mut writes: Vec<(usize, usize)> = Vec::new(); // (obj, class-index)
        for block in self.blocks.values() {
            if block.count == 1
                && block.class >= PAGE_SIZE
                && Self::class_index(block.class).is_none()
            {
                // Large block: stays resident while marked; unmarked large
                // blocks are simply forgotten (address space is sparse).
                if block.marks[0] {
                    live += block.class;
                }
                continue;
            }
            let ci = Self::class_index(block.class).expect("small class");
            for (i, &marked) in block.marks.iter().enumerate() {
                self.work += 1;
                if marked {
                    live += block.class;
                } else {
                    writes.push((block.base + i * block.class, ci));
                }
            }
        }
        // Drop dead large blocks from the block map.
        let dead_large: Vec<usize> = self
            .blocks
            .values()
            .filter(|b| b.count == 1 && Self::class_index(b.class).is_none() && !b.marks[0])
            .map(|b| b.base)
            .collect();
        for base in dead_large {
            let block = self.blocks.remove(&base).expect("exists");
            self.heap_bytes -= block.len();
        }
        for (obj, ci) in writes {
            self.arena.write_u64(obj, self.free_lists[ci] as u64)?;
            self.free_lists[ci] = obj;
        }
        self.live_bytes_estimate = live;
        self.bytes_since_gc = 0;
        Ok(())
    }

    /// Marks the object containing `addr`; returns a packed worklist key the
    /// first time the object is marked.
    fn mark_addr(&mut self, addr: usize) -> Option<usize> {
        let (base, index) = self.find_object(addr)?;
        let block = self.blocks.get_mut(&base).expect("found above");
        if block.marks[index] {
            return None;
        }
        block.marks[index] = true;
        self.work += 1;
        // Pack (base, index): block bases are page-aligned, so base >> 12
        // fits alongside a 20-bit index.
        debug_assert!(index < (1 << 20));
        Some(((base >> 12) << 20) | index)
    }
}

impl SimAllocator for BdwGcSim {
    fn name(&self) -> &'static str {
        "bdw-gc"
    }

    fn malloc(&mut self, size: usize, roots: &[Addr]) -> Result<Option<Addr>, Fault> {
        if size == 0 {
            return Ok(None);
        }
        let Some(ci) = Self::class_index(size) else {
            return self.alloc_large(size, roots);
        };
        if self.should_collect() {
            self.collect(roots)?;
        }
        if self.free_lists[ci] == 0 {
            // Prefer growing a young heap; reclaim only under the growth
            // policy or when address space runs out.
            if self.should_collect() {
                self.collect(roots)?;
            }
            if self.free_lists[ci] == 0 && !self.carve_block(ci)? {
                self.collect(roots)?;
                if self.free_lists[ci] == 0 {
                    return Ok(None);
                }
            }
        }
        let obj = self.free_lists[ci];
        // Popping trusts the in-arena link word, exactly like BDW: a
        // corrupted link that leaves the heap faults here.
        if obj >= self.brk || obj < PAGE_SIZE {
            return Err(Fault::Segv { addr: obj });
        }
        let next = self.arena.read_u64(obj)? as usize;
        self.free_lists[ci] = next;
        // Clear the consumed link word, as BDW's GC_malloc clears object
        // contents: a stale link left behind would otherwise look like a
        // heap pointer and conservatively retain the whole carve-time chain.
        // The REST of the object deliberately keeps its stale bytes, so
        // uninitialized reads stay observable.
        self.arena.write_u64(obj, 0)?;
        self.bytes_since_gc += CLASSES[ci];
        self.work += 1;
        Ok(Some(obj))
    }

    fn free(&mut self, _addr: Addr) -> Result<(), Fault> {
        // "disable calls to free": double and invalid frees are no-ops.
        self.ignored_frees += 1;
        Ok(())
    }

    fn memory(&self) -> &PagedArena {
        &self.arena
    }

    fn memory_mut(&mut self) -> &mut PagedArena {
        &mut self.arena
    }

    fn usable_size(&self, addr: Addr) -> Option<usize> {
        let (base, _) = self.find_object(addr)?;
        let block = &self.blocks[&base];
        Some(block.class - (addr - block.base) % block.class)
    }

    fn live_bytes(&self) -> usize {
        self.live_bytes_estimate
    }

    fn work(&self) -> u64 {
        self.work
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gc() -> BdwGcSim {
        BdwGcSim::new(64 << 20)
    }

    #[test]
    fn alloc_and_use() {
        let mut g = gc();
        let a = g.malloc(100, &[]).unwrap().unwrap();
        g.memory_mut().write(a, &[5u8; 100]).unwrap();
        let mut buf = [0u8; 100];
        g.memory().read(a, &mut buf).unwrap();
        assert_eq!(buf, [5u8; 100]);
        assert!(g.usable_size(a).unwrap() >= 100);
    }

    #[test]
    fn objects_in_a_block_are_contiguous() {
        let mut g = gc();
        let a = g.malloc(64, &[]).unwrap().unwrap();
        let b = g.malloc(64, &[]).unwrap().unwrap();
        assert_eq!(a.abs_diff(b), 64, "no per-object headers between objects");
    }

    #[test]
    fn frees_are_ignored() {
        let mut g = gc();
        let a = g.malloc(64, &[]).unwrap().unwrap();
        g.memory_mut().write(a, &[7u8; 64]).unwrap();
        g.free(a).unwrap();
        g.free(a).unwrap(); // double free: harmless
        g.free(123_456).unwrap(); // invalid free: harmless
        assert_eq!(g.ignored_frees(), 3);
        let mut buf = [0u8; 64];
        g.memory().read(a, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 64], "free must not disturb the object");
    }

    #[test]
    fn collection_reclaims_unreachable_objects() {
        let mut g = gc();
        let keep = g.malloc(64, &[]).unwrap().unwrap();
        let mut dead = Vec::new();
        for _ in 0..10 {
            dead.push(g.malloc(64, &[]).unwrap().unwrap());
        }
        g.collect(&[keep]).unwrap();
        // Everything except `keep` went back onto the free list; allocating
        // one block's worth must serve every dead slot again (the list also
        // holds the block's never-used slots, so sweep the full block).
        let block_objects = PAGE_SIZE / 64;
        let mut served = Vec::new();
        for _ in 0..block_objects {
            served.push(g.malloc(64, &[keep]).unwrap().unwrap());
        }
        for d in &dead {
            assert!(served.contains(d), "dead slot {d:#x} never reused");
        }
        assert!(!served.contains(&keep), "live object must not be reused");
    }

    #[test]
    fn reachable_objects_survive_collection() {
        let mut g = gc();
        let a = g.malloc(64, &[]).unwrap().unwrap();
        g.memory_mut().write(a, &[0x33; 64]).unwrap();
        for _ in 0..50 {
            let _ = g.malloc(128, &[a]).unwrap();
        }
        g.collect(&[a]).unwrap();
        let p = g.malloc(64, &[a]).unwrap().unwrap();
        assert_ne!(p, a, "live object must not be recycled");
        let mut buf = [0u8; 64];
        g.memory().read(a, &mut buf).unwrap();
        assert_eq!(buf, [0x33; 64]);
    }

    #[test]
    fn transitive_reachability_via_heap_pointers() {
        let mut g = gc();
        let inner = g.malloc(64, &[]).unwrap().unwrap();
        g.memory_mut().write(inner, &[0x44; 64]).unwrap();
        let outer = g.malloc(64, &[]).unwrap().unwrap();
        // Store a pointer to `inner` inside `outer`.
        g.memory_mut().write_u64(outer, inner as u64).unwrap();
        g.collect(&[outer]).unwrap();
        // `inner` must have survived via the heap pointer.
        let mut reused_inner = false;
        for _ in 0..20 {
            if g.malloc(64, &[outer]).unwrap().unwrap() == inner {
                reused_inner = true;
            }
        }
        assert!(!reused_inner, "transitively reachable object was recycled");
        let mut buf = [0u8; 64];
        g.memory().read(inner, &mut buf).unwrap();
        assert_eq!(buf, [0x44; 64]);
    }

    #[test]
    fn conservative_retention_of_pointer_lookalikes() {
        let mut g = gc();
        let victim = g.malloc(64, &[]).unwrap().unwrap();
        let holder = g.malloc(64, &[]).unwrap().unwrap();
        // An integer that merely *looks* like a pointer to victim.
        g.memory_mut().write_u64(holder, victim as u64).unwrap();
        g.collect(&[holder]).unwrap();
        for _ in 0..20 {
            assert_ne!(
                g.malloc(64, &[holder]).unwrap().unwrap(),
                victim,
                "conservative GC must retain pointer lookalikes"
            );
        }
    }

    #[test]
    fn interior_pointers_retain_objects() {
        let mut g = gc();
        let a = g.malloc(256, &[]).unwrap().unwrap();
        g.collect(&[a + 128]).unwrap(); // interior root
        for _ in 0..20 {
            assert_ne!(g.malloc(256, &[a + 128]).unwrap().unwrap(), a);
        }
    }

    #[test]
    fn overflow_corrupting_free_link_faults_on_next_alloc() {
        let mut g = gc();
        let a = g.malloc(64, &[]).unwrap().unwrap();
        let b = g.malloc(64, &[]).unwrap().unwrap();
        let keep = a.min(b);
        // Make everything except `keep` garbage, then collect: the dead
        // object now carries a free-list link in the arena.
        g.collect(&[keep]).unwrap();
        // Overflow from `keep` smashes the dead neighbour's link word.
        let evil = u64::MAX - 7;
        let dead = a.max(b);
        g.memory_mut().write_u64(dead, evil).unwrap();
        // Allocate until the corrupted node is popped: its "next" becomes
        // the list head and the following pop faults.
        let mut faulted = false;
        for _ in 0..200 {
            if g.malloc(64, &[keep]).is_err() {
                faulted = true;
                break;
            }
        }
        assert!(faulted, "corrupted in-heap free link must eventually fault");
    }

    #[test]
    fn large_objects_roundtrip_and_are_collected() {
        let mut g = gc();
        let big = g.malloc(100_000, &[]).unwrap().unwrap();
        g.memory_mut().write(big + 99_999, &[1]).unwrap();
        let before = g.heap_bytes();
        g.collect(&[]).unwrap(); // big is unreachable
        assert!(g.heap_bytes() < before, "dead large block reclaimed");
    }

    #[test]
    fn automatic_collection_bounds_heap_growth() {
        let mut g = gc();
        // Allocate 64 MB worth of garbage with one live root; auto-GC must
        // keep heap_bytes far below the total allocated.
        let root = g.malloc(64, &[]).unwrap().unwrap();
        for _ in 0..(64 << 20) / 512 {
            let _ = g.malloc(512, &[root]).unwrap().unwrap();
        }
        assert!(g.collections() > 0, "auto-trigger must have fired");
        assert!(
            g.heap_bytes() < 32 << 20,
            "heap {} should stay bounded",
            g.heap_bytes()
        );
    }
}
