//! Figure 5(a): normalized runtime on "Linux" — the default (Lea-style)
//! malloc, the BDW-style conservative collector, and stand-alone DieHard,
//! across the allocation-intensive suite and the SPECint2000-like profiles.
//!
//! Each workload runs on all three systems; runtimes are normalized to the
//! Lea baseline (malloc = 1.00), exactly like the paper's figure. Wall
//! clock follows the paper's protocol (mean of five runs after a warm-up).
//! The deterministic allocator work-unit counts are reported alongside as a
//! platform-independent cost model.
//!
//! Run: `cargo run --release -p diehard-bench --bin fig5a [scale]`

use diehard_baselines::{BdwGcSim, LeaSimAllocator};
use diehard_bench::{geomean, measured_seconds, norm, TextTable};
use diehard_core::config::HeapConfig;
use diehard_runtime::{run_program, ExecOptions, RunOutcome};
use diehard_sim::{DieHardSimHeap, SimAllocator};
use diehard_workloads::{alloc_intensive_suite, spec_suite};

const BASELINE_SPAN: usize = 256 << 20;

fn run_once<A: SimAllocator>(mut alloc: A, prog: &diehard_runtime::Program) -> (RunOutcome, u64) {
    let out = run_program(&mut alloc, prog, &ExecOptions::default());
    let work = alloc.work();
    (out, work)
}

fn main() {
    let scale: f64 = diehard_bench::positional_args()
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| diehard_bench::smoke_scaled(0.25, 0.02));
    println!("Figure 5(a) — Runtime on Linux (normalized to malloc)");
    println!("(workload scale {scale}; mean of 5 runs after 1 warm-up)\n");

    let mut table = TextTable::new(vec![
        "benchmark",
        "malloc",
        "GC",
        "DieHard",
        "GC work",
        "DH work",
    ]);
    let mut suites: Vec<(&str, Vec<diehard_workloads::Profile>)> = vec![
        ("alloc-intensive", alloc_intensive_suite()),
        ("general-purpose (SPEC-like)", spec_suite()),
    ];
    for (suite_name, profiles) in &mut suites {
        let mut gc_norms = Vec::new();
        let mut dh_norms = Vec::new();
        for profile in profiles.iter() {
            let prog = profile.generate(scale, 0x5165A);
            let lea_secs = measured_seconds(1, 5, || {
                let _ = run_once(LeaSimAllocator::new(BASELINE_SPAN), &prog);
            });
            let gc_secs = measured_seconds(1, 5, || {
                let _ = run_once(BdwGcSim::new(BASELINE_SPAN), &prog);
            });
            let dh_secs = measured_seconds(1, 5, || {
                let heap = DieHardSimHeap::new(HeapConfig::default(), 0xD1E).unwrap();
                let _ = run_once(heap, &prog);
            });
            // Work-unit ratios, deterministic across machines.
            let (_, lea_work) = run_once(LeaSimAllocator::new(BASELINE_SPAN), &prog);
            let (_, gc_work) = run_once(BdwGcSim::new(BASELINE_SPAN), &prog);
            let (_, dh_work) = run_once(
                DieHardSimHeap::new(HeapConfig::default(), 0xD1E).unwrap(),
                &prog,
            );
            let lea_work = lea_work.max(1);
            table.row(vec![
                profile.name.to_string(),
                norm(1.0),
                norm(gc_secs / lea_secs),
                norm(dh_secs / lea_secs),
                norm(gc_work as f64 / lea_work as f64),
                norm(dh_work as f64 / lea_work as f64),
            ]);
            gc_norms.push(gc_secs / lea_secs);
            dh_norms.push(dh_secs / lea_secs);
        }
        table.row(vec![
            format!("GEOMEAN ({suite_name})"),
            norm(1.0),
            norm(geomean(&gc_norms)),
            norm(geomean(&dh_norms)),
            String::new(),
            String::new(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper shape: DieHard geomean ≈ 1.40x on the alloc-intensive suite vs\n\
         ≈ 1.12x on general-purpose benchmarks (GC ≈ 1.26x / lower); outliers\n\
         253.perlbmk (alloc-heavy) and 300.twolf (the paper's 2.09x is TLB-\n\
         driven, which a functional simulator cannot exhibit — see EXPERIMENTS.md)."
    );
}
