//! Figure 4(b): probability of masking dangling-pointer errors with
//! stand-alone DieHard in its default configuration, for object sizes
//! 8–256 bytes and 100 / 1,000 / 10,000 intervening allocations.
//!
//! Two columns of analytics are printed: the paper's default configuration
//! (384 MB heap — Theorem 2 exactly as plotted in Fig 4b) and a scaled
//! configuration small enough to Monte Carlo against the real allocator,
//! demonstrating that the closed form matches measured behaviour.
//!
//! Run: `cargo run --release -p diehard-bench --bin fig4b`

use diehard_bench::{pct, TextTable};
use diehard_core::analysis::{p_dangling_mask, p_dangling_mask_default_config};
use diehard_core::partition::Partition;
use diehard_core::rng::{splitmix, Mwc};
use diehard_core::size_class::SizeClass;

/// Scaled region: 1 MB per class (paper: 32 MB), half available.
const SCALED_REGION: usize = 1 << 20;

/// One trial: a region at its half-full cap frees one victim, then `a`
/// allocations land (worst case: no intervening frees); the dangling data
/// survives iff no allocation reused the victim's slot.
fn trial(class: SizeClass, a: u64, rng: &mut Mwc) -> bool {
    let capacity = SCALED_REGION >> class.shift();
    // Threshold = capacity so the partition accepts allocations past the
    // 1/M cap — the theorem's worst case fills F slots without freeing.
    let mut part = Partition::new(class, capacity, capacity, splitmix(rng.next_u64()));
    let mut live = Vec::with_capacity(capacity / 2);
    for _ in 0..capacity / 2 {
        live.push(part.alloc().expect("has room"));
    }
    let victim = live[rng.below(live.len())];
    part.free(victim);
    for _ in 0..a {
        if part.alloc() == Some(victim) {
            return false; // overwritten
        }
    }
    true
}

fn main() {
    println!("Figure 4(b) — Probability of Avoiding Dangling Pointer Error");
    println!("(stand-alone DieHard, default configuration M = 2)\n");

    let mut table = TextTable::new(vec![
        "object size",
        "intervening allocs",
        "paper-config analytic",
        "scaled analytic",
        "scaled monte carlo",
        "abs err",
    ]);
    let mut rng = Mwc::seeded(0xF164B);
    for &size in &[8usize, 16, 32, 64, 128, 256] {
        let class = SizeClass::for_size(size).expect("small class");
        let capacity = SCALED_REGION >> class.shift();
        let free_slots = (capacity / 2) as u64;
        for &a in &[100u64, 1000, 10_000] {
            let paper = p_dangling_mask_default_config(size, a, 1);
            let scaled = p_dangling_mask(a, free_slots, 1);
            // Keep runtime bounded: fewer trials for the expensive cells.
            let trials: usize =
                diehard_bench::smoke_scaled(if a >= 10_000 { 300 } else { 2000 }, 25);
            let ok = (0..trials).filter(|_| trial(class, a, &mut rng)).count();
            let empirical = ok as f64 / trials as f64;
            table.row(vec![
                format!("{size} B"),
                a.to_string(),
                pct(paper),
                pct(scaled),
                pct(empirical),
                format!("{:.4}", (scaled - empirical).abs()),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Paper anchor: an 8-byte object freed 10,000 allocations early survives\n\
         with > 99.5% probability in the default (384 MB) configuration."
    );
}
