//! Multi-threaded malloc/free contention bench: per-size-class sharding
//! versus a single heap-wide lock versus thread-local magazines.
//!
//! The old global allocator funneled every operation through one
//! `SpinLock<HeapCore>`; the sharded design locks only the size class an
//! operation resolves to; the magazine layer removes even that for the hot
//! path, touching a shard lock only once per refill/flush batch. This bench
//! measures the architectural deltas on a mixed-class workload at 1/2/4/8
//! threads: `single_lock` wraps the facade in one `SpinLock`, `sharded`
//! uses [`ShardedHeap`] directly, and `magazine` runs each thread through a
//! [`MagazineHeap`] thread cache (created and flushed inside the iteration,
//! so refill/flush costs are charged to the measurement). All three run
//! identical per-thread op sequences (allocate into a sliding window, free
//! the oldest), so the reported ns/iter are directly comparable — an
//! iteration is `threads × OPS_PER_THREAD` alloc/free pairs of work, and
//! wall-clock shrinking as threads rise is the scaling win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diehard_core::config::HeapConfig;
use diehard_core::engine::HeapCore;
use diehard_core::magazine::MagazineHeap;
use diehard_core::rng::Mwc;
use diehard_core::sharded::ShardedHeap;
use diehard_core::sync::SpinLock;
use std::hint::black_box;

/// Alloc/free pairs each thread performs per iteration.
const OPS_PER_THREAD: usize = 4000;
/// Live-window length per thread (keeps every class below its 1/M cap).
const WINDOW: usize = 24;

/// A mixed-class request sequence: sizes cycle over all twelve classes with
/// per-thread phase, so threads overlap on classes but not in lockstep.
fn sizes_for_thread(thread: u64) -> Vec<usize> {
    let mut rng = Mwc::seeded(0xA110C ^ (thread * 0x9E37));
    (0..256).map(|_| 1 + rng.below(16 * 1024)).collect()
}

/// The sliding-window churn against the single-lock heap: every alloc and
/// every free takes the one heap-wide lock (the old architecture).
fn churn_single(heap: &SpinLock<HeapCore>, sizes: &[usize]) {
    let mut live: Vec<usize> = Vec::with_capacity(WINDOW + 1);
    for (i, &sz) in sizes.iter().cycle().take(OPS_PER_THREAD).enumerate() {
        let off = {
            let mut h = heap.lock();
            h.alloc(sz).map(|slot| h.offset_of(slot))
        };
        if let Some(off) = off {
            live.push(off);
        }
        if live.len() > WINDOW {
            let victim = live.swap_remove(i % WINDOW);
            heap.lock().free_at(victim);
        }
    }
    for off in live {
        heap.lock().free_at(off);
    }
}

/// The identical churn against the sharded heap: each operation locks only
/// the shard its size class / offset resolves to.
fn churn_sharded(heap: &ShardedHeap, sizes: &[usize]) {
    let mut live: Vec<usize> = Vec::with_capacity(WINDOW + 1);
    for (i, &sz) in sizes.iter().cycle().take(OPS_PER_THREAD).enumerate() {
        if let Some(slot) = heap.alloc(sz) {
            live.push(heap.offset_of(slot));
        }
        if live.len() > WINDOW {
            let victim = live.swap_remove(i % WINDOW);
            heap.free_at(victim);
        }
    }
    for off in live {
        heap.free_at(off);
    }
}

/// The identical churn through a thread-local magazine cache: the hot path
/// is a lock-free handout/buffered free; shard locks are touched only by
/// batched refills and flushes (including the flush when the cache drops).
fn churn_magazine(heap: &MagazineHeap, sizes: &[usize]) {
    let mut cache = heap.thread_cache();
    let mut live: Vec<usize> = Vec::with_capacity(WINDOW + 1);
    for (i, &sz) in sizes.iter().cycle().take(OPS_PER_THREAD).enumerate() {
        if let Some(slot) = cache.alloc(sz) {
            live.push(heap.offset_of(slot));
        }
        if live.len() > WINDOW {
            let victim = live.swap_remove(i % WINDOW);
            cache.free_at(victim);
        }
    }
    for off in live {
        cache.free_at(off);
    }
}

fn run_threads(threads: usize, per_thread: impl Fn(u64) + Sync) {
    std::thread::scope(|scope| {
        for t in 0..threads {
            let per_thread = &per_thread;
            scope.spawn(move || per_thread(t as u64));
        }
    });
}

fn bench_alloc_mt(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_mt");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for &threads in &[1usize, 2, 4, 8] {
        let size_tables: Vec<Vec<usize>> = (0..threads as u64).map(sizes_for_thread).collect();

        let single = SpinLock::new(HeapCore::new(HeapConfig::default(), 1).unwrap());
        group.bench_with_input(
            BenchmarkId::new("single_lock", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    run_threads(threads, |t| {
                        churn_single(&single, black_box(&size_tables[t as usize]));
                    });
                });
            },
        );

        let sharded = ShardedHeap::new(HeapConfig::default(), 1).unwrap();
        group.bench_with_input(
            BenchmarkId::new("sharded", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    run_threads(threads, |t| {
                        churn_sharded(&sharded, black_box(&size_tables[t as usize]));
                    });
                });
            },
        );

        let magazine = MagazineHeap::new(HeapConfig::default(), 1).unwrap();
        group.bench_with_input(
            BenchmarkId::new("magazine", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    run_threads(threads, |t| {
                        churn_magazine(&magazine, black_box(&size_tables[t as usize]));
                    });
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_alloc_mt);
criterion_main!(benches);
