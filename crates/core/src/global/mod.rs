//! The real DieHard allocator: an `mmap`-backed heap usable as Rust's
//! `#[global_allocator]`.
//!
//! This is the production analogue of the paper's `LD_PRELOAD` interposition
//! (§5.1): where the C implementation replaces `malloc`/`free` at link time,
//! a Rust program opts in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: diehard_core::global::DieHard = diehard_core::global::DieHard::new();
//! ```
//!
//! Everything the paper prescribes is here: twelve randomized power-of-two
//! regions capped at `1/M` fullness, metadata fully segregated in its own
//! mapping, large objects served by dedicated `mmap`s with `PROT_NONE`
//! guard pages on both ends, validated (and silently ignored) erroneous
//! frees, and seeding from `/dev/urandom`.
//!
//! The per-operation paths are **lock-free**: after a one-time
//! initialization, the header (heap base, page size, configuration) is read
//! without synchronization, and small-object `alloc`/`free` run entirely on
//! atomics — a probe/CAS loop over the class's paired slot-state map, with
//! a ticket counter enforcing the `1/M` cap. Each size class keeps one
//! *maintenance* `SpinLock` for batch work only (magazine refills, free
//! flushes, reservation teardown); the large-object validity tables have a
//! separate lock of their own.
//!
//! Environment knobs (read once, at first allocation; ignored when the
//! allocator was built with [`DieHard::with_config`]):
//!
//! * `DIEHARD_SEED` — decimal RNG seed (default: true randomness).
//! * `DIEHARD_REGION_MB` — per-class region megabytes (default 32, i.e. the
//!   paper's 384 MB heap).
//! * `DIEHARD_M` — integer expansion factor `M` (default 2).
//! * `DIEHARD_GROW` — elastic mode (§9's adaptive growth, concurrent):
//!   each class's *active* capacity starts at `1/2^value` of its configured
//!   maximum (e.g. `6` → 1/64) and doubles under `1/M`-cap pressure.
//!   Offsets never move — the full virtual span is reserved up front and
//!   only the probing range widens. A class denied at its *maximum*
//!   capacity spills the request to a dedicated guard-paged mapping
//!   instead of returning null. Unset (the default) keeps the fixed-size
//!   behavior: regions are born at full capacity and exhaustion is null.
//!
//! ## Unsafe-surface audit (2026-08, stable toolchain, lock-free fast path)
//!
//! This module, [`sys`], and [`tls`] are the crate's `unsafe` *syscall and
//! TLS* surface, which is why the subtree sits behind the off-by-default
//! `global` cargo feature; the allocation-free synchronization primitives it
//! builds on live ungated in [`crate::sync`], and the lock-free slot-state
//! machine itself lives ungated in [`crate::bitmap`] /
//! [`crate::partition`] / [`crate::magazine`]. Findings, kept current as
//! the module changes:
//!
//! * **No `static mut` anywhere.** Allocator state is a once-initialized
//!   [`OnceCell`]`<GlobalState>`: one `Acquire` load proves the header
//!   (config, `heap_base`, page size) fully initialized, after which it is
//!   immutable and read without any lock. All *mutable* state is interior-
//!   mutable behind locks — the pattern stable Rust recommends over
//!   `static mut` (which trips `static_mut_refs` on current toolchains).
//! * **Atomics replace the old per-shard exclusivity argument.** Every
//!   slot's lifecycle lives in one 2-bit cell of its class's
//!   [`SlotStateMap`](crate::bitmap::SlotStateMap), and every transition is
//!   a single CAS or read-modify-write on that cell: claiming a free slot,
//!   committing a reservation, and freeing are all linearizable at one
//!   atomic instruction, so two threads can never both own a slot and a
//!   free can never clear a slot it does not own (the paired encoding makes
//!   the CAS fail instead). The `1/M` cap is a ticket `fetch_add` that backs
//!   out on overshoot, and the per-class RNG packs its whole state in one
//!   `AtomicU64` CAS ([`AtomicMwc`](crate::rng::AtomicMwc)) — no torn draws.
//!   The surviving locks are slow-path only: one maintenance `SpinLock` per
//!   class serializing *batches* (refill, flush, teardown) against each
//!   other — never taken by per-op traffic — plus the large-object table
//!   lock. No operation ever takes two locks at once; a free resolves its
//!   address with pure arithmetic *before* touching any shared state.
//!   Heap-wide statistics are relaxed atomics and take no lock at all.
//! * **Raw-pointer state.** `GlobalState` owns raw `mmap` regions; its
//!   `unsafe impl Send + Sync` is sound because `heap_base`/`page` are
//!   written once before the `OnceCell` publishes (Release/Acquire) and
//!   only ever *read* afterwards, while everything reachable for mutation
//!   is behind the shard and large-table locks described above.
//! * **Every `unsafe` block carries a `SAFETY:` comment** naming its
//!   invariant; `cargo clippy --all-targets --features global` is
//!   warning-clean with no `#[allow]` escapes in this subtree.
//! * **Lazily-initialized, never self-allocating.** Exactly one thread runs
//!   initialization (losers of the `OnceCell` race spin without parking —
//!   parking may allocate and re-enter the allocator being initialized);
//!   metadata (the slot-state maps and the large-object validity tables)
//!   lives in a dedicated mapping, so initialization cannot recurse.
//!   A failed initialization (OOM, invalid config) is terminal: later calls
//!   return null instead of retrying `mmap` storms.
//! * **Thread-local magazines never allocate and never dangle.** The
//!   per-thread block is `const`-initialized ELF TLS (no lazy-init state,
//!   no `std` destructor registration — which would `calloc` inside glibc
//!   and re-enter the allocator); the thread-exit flush is a single
//!   `pthread` key whose destructor runs while ELF TLS is still mapped.
//!   TLS blocks cache only a heap *id*; every flush that is not protected
//!   by a live `&GlobalState` resolves the id through a registry whose
//!   lock is held across the flush and across `Drop`'s unregistration, so
//!   a dropped heap is either flushed-before-freed or discarded — never
//!   dereferenced (full protocol in [`tls`]'s module docs). Corollary: a
//!   `DieHard` value must not be moved after its first allocation (the
//!   registry pins its interior address); statics never move, and test
//!   instances move only while uninitialized.
//! * **Per-op traffic never spins.** An uncached `alloc` or `free` — and a
//!   magazine handout — completes without acquiring any lock: a thread
//!   preempted mid-operation cannot wedge another thread's allocation, which
//!   the old shard-`SpinLock` design could not promise. The reserved/live
//!   state machine (free → reserved → live → free, one paired-bit cell per
//!   slot) is documented and tested in [`crate::bitmap`] and
//!   [`crate::magazine`].
//! * **`madvise(MADV_HUGEPAGE)` is advice, not a new obligation.** The one
//!   new syscall this revision adds ([`sys::advise_hugepages`], issued on
//!   the small-object span at init and on each large-object mapping) is
//!   non-destructive by specification: it can neither unmap, move, nor
//!   zero the range, so its failure mode is "nothing happens" and the
//!   result is ignored. It runs before the state is published (init) or
//!   before the pointer escapes (large path) — never on memory another
//!   thread can observe mid-change.
//! * **Elastic growth adds no new unsafety.** Growing a class rewrites two
//!   atomics (`capacity`, the packed shift/threshold word) under the class
//!   maintenance lock; the slot-state maps and the heap span are sized for
//!   the *maximum* capacity from initialization, so no metadata or object
//!   memory is ever remapped, and every pointer handed out before a growth
//!   remains valid (same offset arithmetic) after it. The spill path is
//!   the pre-existing large-object allocator, reached with the same
//!   arguments an oversized request would use.

mod sys;
mod tls;

pub use crate::sync::{OnceCell, SpinGuard, SpinLock};

use crate::config::HeapConfig;
use crate::engine::{AllocOutcome, HeapStats};
use crate::large::LargeTable;
use crate::magazine::MagazineHeap;
use crate::rng::entropy_seed;
use crate::safe_str;
use core::alloc::{GlobalAlloc, Layout};
use core::ptr;
use core::sync::atomic::{AtomicU8, Ordering};

/// Capacity of the large-object validity tables (live large objects).
const LARGE_CAPACITY: usize = 4096;

/// The large-object validity tables (§4.1/§4.3), guarded by one lock that
/// is disjoint from every small-object shard.
struct LargeObjects {
    /// user pointer → mapping base (differs from the user pointer by the
    /// front guard page and any extra alignment padding).
    base: LargeTable,
    /// user pointer → total mapping length (guards included).
    len: LargeTable,
}

/// Magazine engagement states for [`GlobalState::mag_state`].
const MAG_UNDECIDED: u8 = 0;
const MAG_ON: u8 = 1;
const MAG_OFF: u8 = 2;

/// The state behind an initialized allocator: the lock-free header fields
/// plus the two locked domains (small-object shards, large-object tables).
struct GlobalState {
    /// Twelve independently-locked partition shards + reserved overlays +
    /// atomic stats (the magazine-capable heap).
    heap: MagazineHeap,
    /// Base address of the small-object span. Written once at init, then
    /// read-only.
    heap_base: *mut u8,
    /// System page size. Written once at init, then read-only.
    page: usize,
    /// Unique id for the thread-local magazine registry (see [`tls`]).
    id: u64,
    /// Whether per-thread magazines are engaged: undecided until the first
    /// operation (registration must run *after* the state reaches its final
    /// address inside the `OnceCell`), then on, or off when the registry is
    /// full (the heap runs uncached — correct, just unbatched).
    mag_state: AtomicU8,
    /// Whether the heap is elastic: classes grow on demand and a denial at
    /// the maximum capacity spills to a dedicated mapping instead of
    /// returning null. Written once at init, then read-only.
    elastic: bool,
    large: SpinLock<LargeObjects>,
}

// SAFETY: `heap_base` and `page` are written once before the enclosing
// OnceCell publishes this value (Release/Acquire) and are only read
// afterwards; `heap` is Sync by construction (per-shard SpinLocks + atomic
// stats) and the large tables are guarded by their SpinLock. The mappings
// referenced by the raw pointers are owned by this state for its lifetime.
unsafe impl Send for GlobalState {}
unsafe impl Sync for GlobalState {}

impl core::fmt::Debug for GlobalState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("GlobalState")
            .field("heap_base", &self.heap_base)
            .field("live_objects", &self.heap.live_objects())
            .field("large_objects", &self.large.lock().len.len())
            .finish()
    }
}

/// The DieHard global allocator.
///
/// Construct it `const` in a static; the heap initializes lazily on first
/// allocation (never allocating through itself — all metadata lives in a
/// dedicated `mmap` arena).
#[derive(Debug)]
pub struct DieHard {
    state: OnceCell<GlobalState>,
    fixed_seed: Option<u64>,
    fixed_config: Option<HeapConfig>,
    fixed_grow: Option<u32>,
    /// Elastic fraction to fall back to when `DIEHARD_GROW` is unset —
    /// only consulted by env-configured allocators
    /// ([`elastic_from_env`](Self::elastic_from_env)).
    default_grow: Option<u32>,
    /// Address of the `GlobalState` whose locks
    /// [`fork_prepare`](Self::fork_prepare) acquired (0 = registry only):
    /// [`fork_resume`](Self::fork_resume) must release exactly that set,
    /// even if another thread initialized the heap between the two calls.
    fork_locked: core::sync::atomic::AtomicUsize,
}

impl DieHard {
    /// Creates an uninitialized allocator; usable in `static` items.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            state: OnceCell::new(),
            fixed_seed: None,
            fixed_config: None,
            fixed_grow: None,
            default_grow: None,
            fork_locked: core::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// As [`new`](Self::new) but with a fixed RNG seed — deterministic
    /// layouts for tests and debugging (heap differencing, §9).
    #[must_use]
    pub const fn with_seed(seed: u64) -> Self {
        Self {
            state: OnceCell::new(),
            fixed_seed: Some(seed),
            fixed_config: None,
            fixed_grow: None,
            default_grow: None,
            fork_locked: core::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// As [`with_seed`](Self::with_seed) but with an explicit heap
    /// configuration, bypassing the `DIEHARD_*` environment knobs entirely.
    ///
    /// This is the constructor tests should use: configuring instances
    /// directly keeps parallel tests isolated, where mutating process-global
    /// environment variables from concurrently-running test threads races.
    /// (An invalid configuration surfaces as a failed initialization: every
    /// allocation returns null.)
    #[must_use]
    pub const fn with_config(config: HeapConfig, seed: u64) -> Self {
        Self {
            state: OnceCell::new(),
            fixed_seed: Some(seed),
            fixed_config: Some(config),
            fixed_grow: None,
            default_grow: None,
            fork_locked: core::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// As [`with_config`](Self::with_config) but **elastic**: every class
    /// starts at `1/2^initial_fraction_log2` of its configured maximum
    /// capacity, doubles under `1/M`-cap pressure, and — once denied at the
    /// maximum — spills the request to a dedicated guard-paged mapping
    /// instead of returning null. The `DIEHARD_GROW` environment knob is
    /// this constructor's env-driven equivalent for allocators built with
    /// [`new`](Self::new).
    #[must_use]
    pub const fn with_elastic_config(
        config: HeapConfig,
        seed: u64,
        initial_fraction_log2: u32,
    ) -> Self {
        Self {
            state: OnceCell::new(),
            fixed_seed: Some(seed),
            fixed_config: Some(config),
            fixed_grow: Some(initial_fraction_log2),
            default_grow: None,
            fork_locked: core::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// As [`new`](Self::new) — fully environment-configured — but
    /// **elastic by default**: when `DIEHARD_GROW` is unset, classes start
    /// at `1/2^default_fraction_log2` of their maximum and a denial at full
    /// size spills to a dedicated mapping instead of returning null. A set
    /// `DIEHARD_GROW` still wins. This is the constructor for the
    /// `LD_PRELOAD` interposer, where `malloc` returning null for a
    /// class-cap reason (rather than true OOM) would fail host programs the
    /// paper promises to keep running.
    #[must_use]
    pub const fn elastic_from_env(default_fraction_log2: u32) -> Self {
        Self {
            state: OnceCell::new(),
            fixed_seed: None,
            fixed_config: None,
            fixed_grow: None,
            default_grow: Some(default_fraction_log2),
            fork_locked: core::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// C-style allocation entry point: allocate `size` bytes aligned to 8
    /// bytes, matching the paper's smallest (8-byte) size class. Rust
    /// callers needing stricter alignment go through [`GlobalAlloc::alloc`]
    /// with an explicit `Layout`. Returns null when the size is zero or too
    /// large to describe as a `Layout`, the size class is at its `1/M` cap,
    /// or the system is out of memory.
    #[must_use]
    pub fn malloc(&self, size: usize) -> *mut u8 {
        if size == 0 {
            return ptr::null_mut();
        }
        // An unrepresentable layout (size overflowing isize when rounded to
        // the alignment) is an allocation failure, reported as null — never
        // silently downgraded to a smaller allocation.
        let Ok(layout) = Layout::from_size_align(size, 8) else {
            return ptr::null_mut();
        };
        // SAFETY: size is non-zero and the layout is valid.
        unsafe { self.alloc(layout) }
    }

    /// C-style free: validates `ptr` exactly like `DieHardFree` (§4.3) and
    /// *ignores* invalid, double, and foreign frees.
    pub fn free(&self, ptr: *mut u8) {
        if ptr.is_null() {
            return;
        }
        let Some(state) = self.state.get() else {
            return;
        };
        Self::release(state, ptr);
    }

    /// DieHard's bounded `strcpy` (§4.4): copies the NUL-terminated string
    /// at `src` to `dest`, clamped to the true remaining space of the heap
    /// object containing `dest`. Falls back to an ordinary bounded-by-source
    /// copy when `dest` is not a DieHard heap pointer.
    ///
    /// The bound is pure header arithmetic — no shard lock is taken, keeping
    /// the paper's two-comparisons-cheap contract even under concurrency.
    ///
    /// Returns the number of payload bytes copied.
    ///
    /// # Safety
    ///
    /// `src` must point to a NUL-terminated string; `dest` must be valid for
    /// writes of the computed bound (always true for live DieHard objects).
    pub unsafe fn strcpy(&self, dest: *mut u8, src: *const u8) -> usize {
        // SAFETY: src is NUL-terminated per contract.
        let src_len = unsafe { c_strlen(src) };
        let src_slice = unsafe { core::slice::from_raw_parts(src, src_len) };

        let space = self
            .state
            .get()
            .and_then(|state| Self::object_space(state, dest))
            .unwrap_or(src_len + 1);
        // SAFETY: dest is valid for `space` bytes: inside the heap that is
        // the distance to the object end; outside it the caller guarantees
        // room for the whole string.
        let dest_slice = unsafe { core::slice::from_raw_parts_mut(dest, space) };
        safe_str::bounded_strcpy(dest_slice, space, src_slice).copied
    }

    /// DieHard's bounded `strncpy` (§4.4): the caller's `n` is clamped by
    /// the true object bound.
    ///
    /// # Safety
    ///
    /// As [`strcpy`](Self::strcpy); `src` must be valid for `n` bytes or up
    /// to its NUL terminator, whichever comes first.
    pub unsafe fn strncpy(&self, dest: *mut u8, src: *const u8, n: usize) -> usize {
        // SAFETY: per contract.
        let src_len = unsafe { c_strlen_bounded(src, n) };
        let src_slice = unsafe { core::slice::from_raw_parts(src, src_len) };
        let space = self
            .state
            .get()
            .and_then(|state| Self::object_space(state, dest))
            .unwrap_or_else(|| n.max(src_len + 1));
        // SAFETY: as in `strcpy`.
        let dest_slice = unsafe { core::slice::from_raw_parts_mut(dest, space) };
        safe_str::bounded_strncpy(dest_slice, space, src_slice, n).copied
    }

    /// Live small objects currently tracked (diagnostics; locks each shard
    /// briefly in turn). Flushes the calling thread's magazine first so the
    /// count reflects this thread's buffered frees; slots reserved inside
    /// other threads' magazines are excluded (they are not live).
    #[must_use]
    pub fn live_objects(&self) -> usize {
        self.flush_thread_cache();
        self.state.get().map_or(0, |s| s.heap.live_objects())
    }

    /// Heap statistics since initialization. Flushes the calling thread's
    /// magazine first, so in quiescence (all other threads exited or
    /// flushed) the counters are exact.
    #[must_use]
    pub fn stats(&self) -> HeapStats {
        self.flush_thread_cache();
        self.state
            .get()
            .map_or_else(Default::default, |s| s.heap.stats())
    }

    /// Slots currently reserved inside thread-local magazines (diagnostics;
    /// zero once every thread has exited or flushed). Flushes the calling
    /// thread's magazine first — flushing returns its reservations too.
    #[must_use]
    pub fn reserved_slots(&self) -> usize {
        self.flush_thread_cache();
        self.state.get().map_or(0, |s| s.heap.reserved_slots())
    }

    /// Flushes the calling thread's magazine into this heap, releasing its
    /// buffered frees and returning its unhanded reservations. A no-op when
    /// the thread's magazines are bound to a different heap (or to none).
    /// Other threads flush at their own exits; call this from each thread
    /// that should settle its accounting early.
    pub fn flush_thread_cache(&self) {
        if let Some(state) = self.state.get() {
            if state.mag_state.load(Ordering::Acquire) == MAG_ON {
                tls::flush_if_bound(state);
            }
        }
    }

    /// C `malloc_usable_size`: the full capacity of the live object whose
    /// *start* is `ptr` — the rounded class size for small objects, the
    /// page-rounded user range for large ones. Returns 0 for null, interior,
    /// foreign, and dead pointers (glibc returns 0 only for null and leaves
    /// the rest undefined; answering 0 instead of corrupting is this
    /// allocator's whole premise). A small object whose free is still
    /// buffered in a thread magazine reports its size until the batch
    /// flushes — the slot is genuinely not reusable before then.
    #[must_use]
    pub fn usable_size(&self, ptr: *mut u8) -> usize {
        let Some(state) = self.state.get() else {
            return 0;
        };
        if ptr.is_null() {
            return 0;
        }
        let base = state.heap_base as usize;
        let addr = ptr as usize;
        if addr >= base && addr < base + state.heap.heap_span() {
            let off = addr - base;
            return match state.heap.slot_containing(off) {
                Some(slot) if state.heap.offset_of(slot) == off && state.heap.is_live_at(off) => {
                    slot.size()
                }
                _ => 0,
            };
        }
        let large = state.large.lock();
        let (Some(total), Some(map_base)) = (large.len.get(addr), large.base.get(addr)) else {
            return 0;
        };
        // The mapping is [map_base .. map_base + total): front guard (plus
        // any alignment padding), the user range, then exactly one tail
        // guard page (`alloc_large` trims any alignment excess off the
        // tail), so the user range ends one page before the mapping does.
        total - (addr - map_base) - state.page
    }

    /// Bytes from `ptr` to the end of the object containing it — the §4.4
    /// clamp bound, valid for *interior* pointers too (unlike
    /// [`usable_size`](Self::usable_size)). `None` when `ptr` is not inside
    /// a DieHard object; small-object answers are pure arithmetic (no
    /// liveness check, matching [`strcpy`](Self::strcpy)'s bound), large
    /// ones resolve exact-start pointers through the validity tables
    /// (interior large pointers are not resolvable — the mapping's own
    /// guard pages bound those).
    #[must_use]
    pub fn remaining_space(&self, ptr: *mut u8) -> Option<usize> {
        let state = self.state.get()?;
        if ptr.is_null() {
            return None;
        }
        match Self::object_space(state, ptr) {
            Some(space) => Some(space),
            None => {
                let size = self.usable_size(ptr);
                (size != 0).then_some(size)
            }
        }
    }

    /// `fork(2)` prepare: acquires, in a fixed global order, every lock a
    /// forked child could otherwise inherit mid-critical-section — the TLS
    /// registry, all twelve per-class maintenance locks, then the
    /// large-object table lock. With these held across the `fork`, the
    /// child's single thread sees batch-consistent shard metadata and
    /// settled tables. In-flight *lock-free* operations in other threads
    /// (a reservation ticket between `fetch_add` and commit) can strand a
    /// bounded number of slots in the child — an availability leak, never
    /// corruption: the slot-state CAS encoding stays self-consistent under
    /// any interleaving of the parent's atomics.
    ///
    /// Pair with [`fork_resume`](Self::fork_resume) in both the parent and
    /// the child (the `pthread_atfork` parent/child hooks).
    pub fn fork_prepare(&self) {
        tls::registry_lock();
        // Record exactly which state (if any) gets locked: a racing first
        // allocation can initialize the heap between prepare and resume,
        // and resume must not "release" locks that were never taken.
        let locked = match self.state.get() {
            Some(state) => {
                state.heap.lock_all_maintenance();
                state.large.raw_lock();
                core::ptr::from_ref(state) as usize
            }
            None => 0,
        };
        self.fork_locked.store(locked, Ordering::Release);
    }

    /// Releases the locks taken by [`fork_prepare`](Self::fork_prepare), in
    /// reverse order.
    ///
    /// # Safety
    ///
    /// Must be called exactly once in each process that inherited the locks
    /// (parent and child), after a `fork_prepare` on the same allocator.
    /// The lock set released is the one `fork_prepare` recorded, so a heap
    /// that initialized concurrently between the two calls is handled
    /// correctly (its locks were never taken and are left alone).
    pub unsafe fn fork_resume(&self) {
        let locked = self.fork_locked.load(Ordering::Acquire);
        if locked != 0 {
            // SAFETY: `locked` is the address of the pinned GlobalState
            // whose locks the paired fork_prepare acquired (this thread, or
            // the forking thread this child process inherited from); the
            // state outlives the allocator and never moves.
            let state = unsafe { &*(locked as *const GlobalState) };
            // SAFETY: held by the paired fork_prepare.
            unsafe {
                state.large.raw_unlock();
                state.heap.unlock_all_maintenance();
            }
        }
        // SAFETY: registry_lock was unconditional in prepare.
        unsafe { tls::registry_unlock() };
    }

    // ---- internals -------------------------------------------------------

    /// The initialized state, running the one-time initialization on first
    /// call. `None` means initialization failed (terminally).
    fn state(&self) -> Option<&GlobalState> {
        self.state.get_or_try_init(|| self.build_state())
    }

    /// The one-time initialization: choose a configuration and seed, map the
    /// metadata arena and the heap span, and assemble the sharded heap plus
    /// large-object tables. Runs on exactly one thread.
    fn build_state(&self) -> Option<GlobalState> {
        let config = match &self.fixed_config {
            Some(config) => config.clone(),
            None => HeapConfig::paper_default()
                .with_region_bytes((crate::env::region_mb() as usize) << 20)
                .with_multiplier(crate::env::multiplier() as f64),
        };
        config.validate().ok()?;
        let seed = self
            .fixed_seed
            .or_else(crate::env::seed)
            .unwrap_or_else(entropy_seed);
        // Elastic mode: an explicit constructor choice wins; env-configured
        // allocators honor DIEHARD_GROW (falling back to the constructor's
        // default fraction, if any), config-fixed ones ignore the
        // environment entirely (same isolation contract as the other knobs).
        let grow = self.fixed_grow.or_else(|| {
            if self.fixed_config.is_some() {
                None
            } else {
                crate::env::grow().or(self.default_grow)
            }
        });

        let page = sys::page_size();
        let span = config.heap_span();
        let words = MagazineHeap::metadata_words_needed(&config);
        let table_cap = (LARGE_CAPACITY * 2).next_power_of_two();
        let meta_bytes = (words * 8 + 4 * table_cap * 8 + page - 1) & !(page - 1);
        let meta = sys::map_reserve(meta_bytes);
        if meta.is_null() {
            return None;
        }
        let heap_base = sys::map_reserve(span);
        if heap_base.is_null() {
            // SAFETY: meta was just mapped with this length.
            unsafe { sys::unmap(meta, meta_bytes) };
            return None;
        }

        // The span is reserved at full (maximum) size either way — elastic
        // growth only widens the probing range, so huge-page advice on the
        // whole arena is valid for the heap's entire lifetime. Best-effort;
        // issued before the state is published.
        sys::advise_hugepages(heap_base, span);

        let bitmap_words = meta.cast::<u64>();
        // SAFETY: the meta arena provides `words` zeroed u64s (allocation
        // bitmaps + reserved overlays) followed by four table arrays of
        // `table_cap` usizes each; mmap'd memory is zeroed and exclusively
        // ours.
        let heap = match grow {
            // SAFETY: as above — the elastic variant has the identical
            // metadata footprint (slot maps are max-capacity-sized).
            Some(fraction) => unsafe {
                MagazineHeap::from_raw_parts_elastic(config, seed, bitmap_words, fraction)
            },
            None => unsafe { MagazineHeap::from_raw_parts(config, seed, bitmap_words) },
        };
        let heap = match heap {
            Ok(heap) => heap,
            Err(_) => {
                // SAFETY: both mappings were just created with these lengths
                // and nothing references them.
                unsafe {
                    sys::unmap(meta, meta_bytes);
                    sys::unmap(heap_base, span);
                }
                return None;
            }
        };
        let tables = unsafe { meta.add(words * 8).cast::<usize>() };
        // SAFETY: as above; disjoint quarters of the table area.
        let base = unsafe { LargeTable::from_storage(tables, tables.add(table_cap), table_cap) };
        let len = unsafe {
            LargeTable::from_storage(
                tables.add(2 * table_cap),
                tables.add(3 * table_cap),
                table_cap,
            )
        };
        Some(GlobalState {
            heap,
            heap_base,
            page,
            id: tls::allocate_id(),
            mag_state: AtomicU8::new(MAG_UNDECIDED),
            elastic: grow.is_some(),
            large: SpinLock::new(LargeObjects { base, len }),
        })
    }

    /// Whether thread-local magazines serve this heap. The first call
    /// registers the (now pinned) state in the TLS registry; a full
    /// registry disables magazines for this heap, which then runs through
    /// the uncached sharded path.
    fn magazines_on(state: &GlobalState) -> bool {
        match state.mag_state.load(Ordering::Acquire) {
            MAG_ON => true,
            MAG_OFF => false,
            _ => {
                let on = tls::register(state);
                let decided = if on { MAG_ON } else { MAG_OFF };
                // Racing first-operations may decide differently (one can
                // register just as a registry row frees up); the CAS makes
                // one decision win and every racer adopt it — registration
                // is idempotent by id, so the winner's view is correct for
                // all.
                match state.mag_state.compare_exchange(
                    MAG_UNDECIDED,
                    decided,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => on,
                    Err(current) => current == MAG_ON,
                }
            }
        }
    }

    /// Distance from `ptr` to the end of its (small) heap object, when
    /// `ptr` points into the small-object heap. Pure header arithmetic —
    /// takes no lock.
    fn object_space(state: &GlobalState, ptr: *mut u8) -> Option<usize> {
        let base = state.heap_base as usize;
        let addr = ptr as usize;
        if addr < base || addr >= base + state.heap.heap_span() {
            return None;
        }
        safe_str::space_in_object(state.heap.geometry(), addr - base)
    }

    fn release(state: &GlobalState, ptr: *mut u8) {
        let base = state.heap_base as usize;
        let addr = ptr as usize;
        if addr >= base && addr < base + state.heap.heap_span() {
            // Small object: full §4.3 validation. The span/alignment half is
            // lock-free arithmetic either way; with magazines engaged the
            // free is buffered in this thread's cache and released to its
            // shard in a batch.
            if Self::magazines_on(state) {
                tls::with_cache(state, |mags, state| {
                    let _ = mags.free_at(&state.heap, addr - base);
                });
            } else {
                let _ = state.heap.free_at(addr - base);
            }
            return;
        }
        // Possibly a large object: consult the validity tables; unknown
        // addresses are ignored ("otherwise, it ignores the request").
        let (map_base, total) = {
            let mut large = state.large.lock();
            let Some(total) = large.len.remove(addr) else {
                return;
            };
            let map_base = large.base.remove(addr).expect("large tables out of sync");
            (map_base, total)
        };
        // SAFETY: we recorded (map_base, total) when mapping this object and
        // it has not been released since (the table entry was live); the
        // lock is already dropped, so the syscall never runs under it.
        unsafe { sys::unmap(map_base as *mut u8, total) };
    }

    fn alloc_large(state: &GlobalState, size: usize, align: usize) -> *mut u8 {
        let page = state.page;
        let user_len = (size + page - 1) & !(page - 1);
        let extra_align = if align > page { align } else { 0 };
        let total = user_len + 2 * page + extra_align;
        let base = sys::map_reserve(total);
        if base.is_null() {
            return ptr::null_mut();
        }
        let user = {
            let candidate = base as usize + page;
            let aligned = if align > page {
                (candidate + align - 1) & !(align - 1)
            } else {
                candidate
            };
            aligned as *mut u8
        };
        let user_addr = user as usize;
        // Trim any alignment excess off the tail so the user range always
        // ends exactly one page before the mapping does — that invariant is
        // what lets `usable_size` recover the user length from the two
        // table entries alone. (With `align <= page` the excess is zero and
        // this is a no-op.)
        let tail = user_addr + user_len;
        let excess = base as usize + total - (tail + page);
        if excess > 0 {
            // SAFETY: [tail + page, base + total) is a page-aligned unused
            // suffix of the fresh mapping; nothing references it.
            unsafe { sys::unmap((tail + page) as *mut u8, excess) };
        }
        let total = tail + page - base as usize;
        // Guard everything before and after the user range (§4.1: "guard
        // pages without read or write access on either end").
        // SAFETY: the ranges are page-aligned and inside the fresh mapping.
        unsafe {
            sys::protect_none(base, user_addr - base as usize);
            sys::protect_none(tail as *mut u8, page);
        }
        // Huge-page advice on the user range only (the guards must stay
        // 4 KB mappings); self-gated below 2 MB, best-effort above.
        sys::advise_hugepages(user, user_len);
        let mut large = state.large.lock();
        if !large.len.insert(user_addr, total) {
            drop(large);
            // Table full: refuse rather than lose track of the mapping.
            // SAFETY: mapping is unreferenced; release it whole.
            unsafe { sys::unmap(base, total) };
            return ptr::null_mut();
        }
        let inserted = large.base.insert(user_addr, base as usize);
        debug_assert!(inserted, "large tables out of sync");
        user
    }
}

impl Default for DieHard {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for DieHard {
    /// Unregisters the heap from the magazine registry (so other threads'
    /// stale TLS bindings become lookup misses and are discarded, never
    /// dereferenced) after flushing this thread's own binding. The `mmap`
    /// regions themselves are deliberately leaked, as before: a global
    /// allocator's heap must outlive every object it ever served, and
    /// tracking that is the caller's impossible job, not ours.
    fn drop(&mut self) {
        if let Some(state) = self.state.get() {
            // Unconditionally: even a heap that settled on MAG_OFF can have
            // lost a registration race and still own a registry row (the
            // row must not outlive the state it points to); retire's
            // removal is a no-op when the id was never registered.
            tls::retire(state);
        }
    }
}

// SAFETY: `alloc`/`dealloc` satisfy the GlobalAlloc contract: blocks are
// valid for the layout, never aliased while live (uniqueness is the
// per-shard bitmap no-overlap invariant), and dealloc releases exactly what
// alloc returned.
unsafe impl GlobalAlloc for DieHard {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let Some(state) = self.state() else {
            return ptr::null_mut();
        };
        // Slots are naturally aligned to their (power-of-two) class size, so
        // serving max(size, align) satisfies any alignment request.
        let need = layout.size().max(layout.align()).max(1);
        if need <= crate::size_class::MAX_OBJECT_SIZE {
            // Fast path: pop a pre-reserved random slot from this thread's
            // magazine (no lock); refills batch the shard lock.
            let outcome = if Self::magazines_on(state) {
                tls::with_cache(state, |mags, state| mags.try_alloc(&state.heap, need))
            } else {
                state.heap.try_alloc(need)
            };
            match outcome {
                AllocOutcome::Placed(slot) => {
                    let off = state.heap.offset_of(slot);
                    // SAFETY: `off` lies within the reserved heap span.
                    unsafe { state.heap_base.add(off) }
                }
                // An elastic class denied at its *maximum* capacity spills
                // to a dedicated guard-paged mapping rather than failing:
                // the pointer frees through the same large-object table an
                // oversized request would use.
                AllocOutcome::Spill if state.elastic => {
                    Self::alloc_large(state, layout.size().max(1), layout.align())
                }
                AllocOutcome::Spill | AllocOutcome::Unsupported => ptr::null_mut(),
            }
        } else {
            Self::alloc_large(state, layout.size(), layout.align())
        }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, _layout: Layout) {
        let Some(state) = self.state.get() else {
            return;
        };
        Self::release(state, ptr);
    }
}

/// Length of the NUL-terminated string at `p`.
///
/// # Safety
///
/// `p` must point to a NUL-terminated string.
unsafe fn c_strlen(p: *const u8) -> usize {
    let mut n = 0;
    // SAFETY: caller guarantees a terminator exists.
    while unsafe { *p.add(n) } != 0 {
        n += 1;
    }
    n
}

/// Length of the string at `p`, scanning at most `max` bytes.
///
/// # Safety
///
/// `p` must be valid for reads up to `max` bytes or its NUL terminator.
unsafe fn c_strlen_bounded(p: *const u8, max: usize) -> usize {
    let mut n = 0;
    // SAFETY: caller guarantees validity up to `max` or the terminator.
    while n < max && unsafe { *p.add(n) } != 0 {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn small_test_heap() -> DieHard {
        // 1 MB regions keep test address-space usage modest; the config is
        // instance-scoped (no env mutation), so parallel tests stay
        // isolated; seed fixed for reproducibility.
        DieHard::with_config(HeapConfig::default(), 0xFEED_FACE)
    }

    #[test]
    fn malloc_free_roundtrip() {
        let heap = small_test_heap();
        let p = heap.malloc(100);
        assert!(!p.is_null());
        // The object is writable through its full rounded size.
        // SAFETY: DieHard returned a live 128-byte object.
        unsafe {
            for i in 0..128 {
                *p.add(i) = i as u8;
            }
            assert_eq!(*p.add(127), 127);
        }
        assert_eq!(heap.live_objects(), 1);
        heap.free(p);
        assert_eq!(heap.live_objects(), 0);
    }

    #[test]
    fn oversized_malloc_returns_null_not_tiny_object() {
        let heap = small_test_heap();
        // A size that cannot be described as a Layout must fail cleanly —
        // never be silently served as a smaller allocation.
        assert!(heap.malloc(usize::MAX - 4).is_null());
        assert_eq!(heap.stats().allocs, 0);
    }

    #[test]
    fn double_free_is_ignored() {
        let heap = small_test_heap();
        let p = heap.malloc(64);
        heap.free(p);
        heap.free(p); // must not crash or corrupt
        heap.free(p);
        assert_eq!(heap.stats().ignored_frees, 2);
    }

    #[test]
    fn invalid_free_is_ignored() {
        let heap = small_test_heap();
        let p = heap.malloc(64);
        // Interior pointer.
        // SAFETY: p+1 stays within the allocated object.
        heap.free(unsafe { p.add(1) });
        // Wild pointer.
        heap.free(0x1234_5678 as *mut u8);
        assert_eq!(heap.live_objects(), 1, "victim object must stay live");
        heap.free(p);
    }

    #[test]
    fn alignment_served_up_to_class_sizes() {
        let heap = small_test_heap();
        for align in [1usize, 8, 64, 4096] {
            let layout = Layout::from_size_align(40, align).unwrap();
            // SAFETY: valid non-zero layout.
            let p = unsafe { heap.alloc(layout) };
            assert!(!p.is_null());
            assert_eq!(p as usize % align, 0, "alignment {align}");
            // SAFETY: p came from alloc with this layout.
            unsafe { heap.dealloc(p, layout) };
        }
    }

    #[test]
    fn large_objects_roundtrip_with_guard_pages() {
        let heap = small_test_heap();
        let p = heap.malloc(100_000);
        assert!(!p.is_null());
        // SAFETY: 100k bytes live at p.
        unsafe {
            *p = 1;
            *p.add(99_999) = 2;
            assert_eq!(*p, 1);
        }
        heap.free(p);
        // Freeing again is ignored (validity table already empty).
        heap.free(p);
    }

    #[test]
    fn zero_malloc_returns_null() {
        let heap = small_test_heap();
        assert!(heap.malloc(0).is_null());
    }

    #[test]
    fn exhaustion_returns_null_not_crash() {
        let heap = DieHard::with_config(HeapConfig::default(), 7);
        // The 16 KB class in a 1 MB region holds 64 slots, 32 live cap.
        let mut got = 0;
        for _ in 0..100 {
            if !heap.malloc(16 * 1024).is_null() {
                got += 1;
            }
        }
        assert_eq!(got, 32, "1/M cap must bound live objects");
    }

    /// The elastic acceptance scenario end-to-end: a heap born at 1/64 of
    /// its maximum absorbs a beyond-maximum workload with no OOM — the
    /// first 32 requests grow the 16 KB class 2 → 64 and place inside the
    /// span, the rest spill to dedicated guard-paged mappings — and every
    /// pointer, placed or spilled, frees cleanly through the same API.
    #[test]
    fn elastic_heap_grows_then_spills_to_dedicated_mappings() {
        let heap = DieHard::with_elastic_config(HeapConfig::default(), 0xE1A571C, 6);
        let mut ptrs = Vec::new();
        for i in 0..40usize {
            let p = heap.malloc(16 * 1024);
            assert!(!p.is_null(), "request {i} must spill, not fail");
            // SAFETY: live 16 KB object (placed or spilled).
            unsafe {
                *p = i as u8;
                *p.add(16 * 1024 - 1) = i as u8;
            }
            ptrs.push(p);
        }
        let stats = heap.stats();
        assert_eq!(stats.allocs, 32, "the 1/M cap at full size places 32");
        assert_eq!(stats.exhausted, 8, "the remaining 8 spilled");
        for p in ptrs {
            heap.free(p);
        }
        assert_eq!(heap.live_objects(), 0);
        assert_eq!(heap.stats().frees, 32, "spilled frees release mappings");
    }

    #[test]
    fn invalid_config_fails_terminally_with_null() {
        let bad = HeapConfig::default().with_region_bytes(12_345); // not a power of two
        let heap = DieHard::with_config(bad, 1);
        assert!(heap.malloc(64).is_null());
        assert!(
            heap.malloc(64).is_null(),
            "failure is terminal, not retried"
        );
        assert_eq!(heap.live_objects(), 0);
    }

    #[test]
    fn strcpy_contains_overflow() {
        let heap = small_test_heap();
        let dst = heap.malloc(8);
        let neighbor = heap.malloc(8);
        assert!(!dst.is_null() && !neighbor.is_null());
        // SAFETY: neighbor is a live 8-byte object.
        unsafe { neighbor.write_bytes(0x5A, 8) };
        let long = b"this string is far longer than eight bytes\0";
        // SAFETY: dst is a live heap object; src is NUL-terminated.
        let copied = unsafe { heap.strcpy(dst, long.as_ptr()) };
        assert_eq!(copied, 7, "8-byte object keeps 7 payload bytes + NUL");
        // SAFETY: both objects are live.
        unsafe {
            assert_eq!(*dst.add(7), 0);
            for i in 0..8 {
                assert_eq!(*neighbor.add(i), 0x5A, "neighbor byte {i} corrupted");
            }
        }
        heap.free(dst);
        heap.free(neighbor);
    }

    #[test]
    fn strncpy_clamps_lying_length() {
        let heap = small_test_heap();
        let dst = heap.malloc(8);
        let src = b"aaaaaaaaaaaaaaaaaaaaaaaa\0";
        // Caller claims dst holds 100 bytes; DieHard knows better.
        // SAFETY: dst is live; src NUL-terminated.
        let copied = unsafe { heap.strncpy(dst, src.as_ptr(), 100) };
        assert_eq!(copied, 7);
        heap.free(dst);
    }

    #[test]
    fn usable_size_reports_rounded_class_size() {
        let heap = small_test_heap();
        let p = heap.malloc(100);
        assert!(!p.is_null());
        assert_eq!(heap.usable_size(p), 128, "rounded to the 128-byte class");
        // Interior, foreign, and null pointers answer 0, never garbage.
        // SAFETY: p+1 stays within the live object.
        assert_eq!(heap.usable_size(unsafe { p.add(1) }), 0);
        assert_eq!(heap.usable_size(0x1234_5678 as *mut u8), 0);
        assert_eq!(heap.usable_size(ptr::null_mut()), 0);
        heap.free(p);
        // The free may sit in this thread's magazine buffer (the slot is
        // then still un-reusable, hence "live"); flush to settle it.
        heap.flush_thread_cache();
        assert_eq!(heap.usable_size(p), 0, "dead objects answer 0");
    }

    #[test]
    fn usable_size_covers_large_objects_exactly() {
        let heap = small_test_heap();
        let p = heap.malloc(100_000);
        assert!(!p.is_null());
        let usable = heap.usable_size(p);
        assert!(usable >= 100_000, "at least the request: {usable}");
        assert_eq!(usable % 4096, 0, "page-rounded user range");
        assert!(usable < 100_000 + 2 * 65536, "no guard/padding overcount");
        // Every reported byte is really writable (the tail guard page
        // starts exactly at the end, so an overcount would fault here).
        // SAFETY: usable bytes live at p per the assertion under test.
        unsafe {
            *p.add(usable - 1) = 0xEE;
            assert_eq!(*p.add(usable - 1), 0xEE);
        }
        heap.free(p);
        assert_eq!(heap.usable_size(p), 0);
    }

    #[test]
    fn usable_size_exact_under_extreme_alignment() {
        let heap = small_test_heap();
        // Alignment beyond a page exercises the tail-trim path.
        let layout = Layout::from_size_align(100_000, 1 << 21).unwrap();
        // SAFETY: valid non-zero layout.
        let p = unsafe { heap.alloc(layout) };
        assert!(!p.is_null());
        assert_eq!(p as usize % (1 << 21), 0);
        let usable = heap.usable_size(p);
        assert!(usable >= 100_000);
        // SAFETY: usable bytes live at p.
        unsafe { *p.add(usable - 1) = 1 };
        // SAFETY: p came from alloc with this layout.
        unsafe { heap.dealloc(p, layout) };
    }

    #[test]
    fn remaining_space_bounds_interior_pointers() {
        let heap = small_test_heap();
        let p = heap.malloc(256);
        assert!(!p.is_null());
        assert_eq!(heap.remaining_space(p), Some(256));
        // SAFETY: interior pointers of a live 256-byte object.
        unsafe {
            assert_eq!(heap.remaining_space(p.add(200)), Some(56));
            assert_eq!(heap.remaining_space(p.add(255)), Some(1));
        }
        assert_eq!(heap.remaining_space(0x4000 as *mut u8), None);
        let big = heap.malloc(100_000);
        assert_eq!(heap.remaining_space(big), Some(heap.usable_size(big)));
        heap.free(p);
        heap.free(big);
    }

    #[test]
    fn fork_lock_roundtrip_keeps_heap_usable() {
        let heap = small_test_heap();
        // Uninitialized: prepare/resume must balance with no heap locks.
        heap.fork_prepare();
        // SAFETY: paired with the prepare above, same thread.
        unsafe { heap.fork_resume() };
        let p = heap.malloc(64);
        assert!(!p.is_null());
        // Initialized: the full lock set (registry, 12 maintenance, large).
        heap.fork_prepare();
        // SAFETY: paired with the prepare above, same thread.
        unsafe { heap.fork_resume() };
        heap.free(p);
        let q = heap.malloc(2048);
        assert!(!q.is_null(), "heap fully functional after the roundtrip");
        heap.free(q);
        assert_eq!(heap.live_objects(), 0);
    }

    #[test]
    fn different_seeds_randomize_layout() {
        let a = DieHard::with_config(HeapConfig::default(), 1);
        let b = DieHard::with_config(HeapConfig::default(), 2);
        let base_a = a.malloc(64) as isize;
        let base_b = b.malloc(64) as isize;
        let mut same = 0;
        for _ in 0..32 {
            let pa = a.malloc(64) as isize - base_a;
            let pb = b.malloc(64) as isize - base_b;
            if pa == pb {
                same += 1;
            }
        }
        assert!(same < 8, "layouts should differ across seeds");
    }

    #[test]
    fn concurrent_alloc_free_safe() {
        let heap = DieHard::with_config(HeapConfig::default(), 3);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let heap = &heap;
                scope.spawn(move || {
                    let mut ptrs = Vec::new();
                    for i in 0..500 {
                        let p = heap.malloc(8 + (t * 97 + i) % 2000);
                        if !p.is_null() {
                            // SAFETY: live object of at least 8 bytes.
                            unsafe { p.write_bytes(t as u8, 8) };
                            ptrs.push(p);
                        }
                        if ptrs.len() > 50 {
                            heap.free(ptrs.swap_remove(0));
                        }
                    }
                    for p in ptrs {
                        heap.free(p);
                    }
                    // Scoped threads: `scope` returns when the closure
                    // finishes, racing the pthread-key exit flush that runs
                    // during OS-thread teardown — settle explicitly so the
                    // assertion below is deterministic. (Plainly `join`ed
                    // threads need no such call: `pthread_join` returns only
                    // after key destructors complete.)
                    heap.flush_thread_cache();
                });
            }
        });
        assert_eq!(heap.live_objects(), 0);
    }

    /// The pthread-key exit flush: a plainly-`join`ed thread (join returns
    /// only after key destructors run) leaks neither reservations nor
    /// buffered frees.
    #[test]
    fn thread_exit_flushes_magazines() {
        let heap = std::sync::Arc::new(DieHard::with_config(HeapConfig::default(), 0x7157));
        let h = std::sync::Arc::clone(&heap);
        std::thread::spawn(move || {
            let mut ptrs = Vec::new();
            for i in 0..200usize {
                let p = h.malloc(8 + (i * 37) % 2000);
                assert!(!p.is_null());
                ptrs.push(p);
            }
            for p in ptrs {
                h.free(p);
            }
            // No explicit flush: reservations and any still-buffered frees
            // must be settled by the thread-exit destructor alone.
        })
        .join()
        .unwrap();
        assert_eq!(heap.reserved_slots(), 0, "exit flush returns reservations");
        assert_eq!(heap.live_objects(), 0, "exit flush releases buffered frees");
        let stats = heap.stats();
        assert_eq!(stats.allocs, 200);
        assert_eq!(stats.frees, 200);
        assert_eq!(stats.ignored_frees, 0);
    }

    /// One thread alternating between two live heaps: each touch of the
    /// other heap rebinds the thread's magazines, flushing into the heap
    /// they came from — no reservation is ever stranded in a live heap.
    #[test]
    fn rebinding_between_live_heaps_flushes_the_old_one() {
        let a = DieHard::with_config(HeapConfig::default(), 0xA);
        let b = DieHard::with_config(HeapConfig::default(), 0xB);
        let pa = a.malloc(64);
        let pb = b.malloc(64); // rebind: flushes a's magazines back to a
        assert!(!pa.is_null() && !pb.is_null());
        assert_eq!(a.reserved_slots(), 0, "rebind returned a's reservations");
        assert_eq!(a.live_objects(), 1, "handed-out object stays live");
        a.free(pa); // rebind back: flushes b's magazines
        assert_eq!(b.reserved_slots(), 0);
        assert_eq!(b.live_objects(), 1);
        b.free(pb);
        assert_eq!(a.live_objects(), 0);
        assert_eq!(b.live_objects(), 0);
    }

    /// Reserved-but-unhanded slots are not live through the C API either:
    /// a wild free aimed at one is ignored and the reservation survives.
    #[test]
    fn magazine_reservations_invisible_to_free_and_live_count() {
        let heap = DieHard::with_config(HeapConfig::default(), 0x11FE);
        let p = heap.malloc(64);
        assert!(!p.is_null());
        // The refill reserved a batch; only the handout is an allocation.
        assert_eq!(heap.stats().allocs, 1);
        assert_eq!(heap.live_objects(), 1);
        // Every remaining slot of the batch is reserved, not live — and a
        // heap.reserved_slots() call flushes this thread's cache, returning
        // them to the shard.
        assert_eq!(heap.reserved_slots(), 0);
        heap.free(p);
        assert_eq!(heap.live_objects(), 0);
    }

    /// The sharded-design stress test: ≥8 threads hammer all twelve size
    /// classes concurrently, with deliberate erroneous frees and `strcpy`
    /// calls mixed in, and the live-object accounting plus the atomic
    /// statistics must come out exactly consistent once the threads join.
    #[test]
    fn stress_all_classes_with_errors_stays_consistent() {
        const THREADS: u64 = 8;
        const ROUNDS: usize = 120;
        let heap = DieHard::with_config(HeapConfig::default(), 0xC0FFEE);
        let attempted = AtomicU64::new(0);
        let served = AtomicU64::new(0);
        let misaligned_frees = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let heap = &heap;
                let attempted = &attempted;
                let served = &served;
                let misaligned_frees = &misaligned_frees;
                scope.spawn(move || {
                    let mut rng = crate::rng::Mwc::seeded(0xBEEF ^ t);
                    let mut live: Vec<*mut u8> = Vec::new();
                    for round in 0..ROUNDS {
                        // One allocation in every size class per round.
                        for shift in 0..12u32 {
                            let size = 8usize << shift;
                            attempted.fetch_add(1, Ordering::Relaxed);
                            let p = heap.malloc(size);
                            if p.is_null() {
                                continue; // 1/M cap under 8-way pressure
                            }
                            served.fetch_add(1, Ordering::Relaxed);
                            // SAFETY: live object of at least 8 bytes.
                            unsafe { p.write_bytes(t as u8, 8) };
                            // Erroneous free of an interior (misaligned)
                            // pointer: always ignored, counted exactly.
                            // SAFETY: p+1 stays within the live object.
                            heap.free(unsafe { p.add(1) });
                            misaligned_frees.fetch_add(1, Ordering::Relaxed);
                            live.push(p);
                        }
                        // Erroneous frees outside the heap: ignored,
                        // uncounted (the large-object path owns them).
                        heap.free((0x10 + round) as *mut u8);
                        // §4.4 strcpy into a fresh small object, clamped.
                        let dst = heap.malloc(8);
                        if !dst.is_null() {
                            attempted.fetch_add(1, Ordering::Relaxed);
                            served.fetch_add(1, Ordering::Relaxed);
                            let long = b"far longer than eight bytes\0";
                            // SAFETY: dst is live; src is NUL-terminated.
                            let copied = unsafe { heap.strcpy(dst, long.as_ptr()) };
                            assert_eq!(copied, 7, "strcpy must clamp to the object");
                            live.push(dst);
                        } else {
                            attempted.fetch_add(1, Ordering::Relaxed);
                        }
                        // Keep the window bounded; frees of own pointers
                        // must always succeed.
                        while live.len() > 24 {
                            let victim = live.swap_remove(rng.below(live.len()));
                            heap.free(victim);
                        }
                    }
                    for p in live {
                        heap.free(p);
                    }
                    // Settle before `scope` returns (see
                    // `concurrent_alloc_free_safe` for why scoped threads
                    // flush explicitly).
                    heap.flush_thread_cache();
                });
            }
        });

        // Quiescent double-free (single-threaded, so the slot cannot have
        // been re-served between the two frees): exactly one more ignored.
        let p = heap.malloc(64);
        assert!(!p.is_null());
        heap.free(p);
        heap.free(p);

        let stats = heap.stats();
        assert_eq!(heap.live_objects(), 0, "every served object was freed");
        assert_eq!(stats.allocs, served.load(Ordering::Relaxed) + 1);
        assert_eq!(stats.frees, stats.allocs, "each alloc freed exactly once");
        assert_eq!(
            stats.ignored_frees,
            misaligned_frees.load(Ordering::Relaxed) + 1,
            "ignored = per-thread misaligned frees + the quiescent double free"
        );
        assert_eq!(
            stats.exhausted,
            attempted.load(Ordering::Relaxed) - served.load(Ordering::Relaxed),
            "every failed attempt was an at-threshold denial"
        );
    }
}
