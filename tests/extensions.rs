//! Integration tests for the paper's extension features (§9) and for
//! cross-cutting invariants: the adaptive heap under real workloads, the
//! M dial's monotone effect on protection, and bounded-strcpy end-to-end.

use diehard::core::adaptive::AdaptiveHeap;
use diehard::inject::{inject, Injection};
use diehard::prelude::*;
use diehard::workloads::profile_by_name;

/// The adaptive heap (future work, §9) runs a real workload's allocation
/// stream to completion, growing on demand, with a much smaller footprint.
#[test]
fn adaptive_heap_serves_real_workloads_with_smaller_footprint() {
    // Small regions + a longer-lived profile so live data actually presses
    // against the initial 1/64 slot allotment.
    let config = HeapConfig::default().with_region_bytes(64 * 1024);
    let fixed_span = config.heap_span();
    let mut heap = AdaptiveHeap::new(config, 5).unwrap();
    let prog = profile_by_name("p2c").unwrap().generate(0.2, 3);
    let mut live: std::collections::HashMap<u32, usize> = Default::default();
    for op in &prog.ops {
        match op {
            Op::Alloc { id, size } => {
                let slot = heap.alloc(*size).expect("adaptive heap grows on demand");
                live.insert(*id, heap.offset_of(slot));
            }
            Op::Free { id } => {
                if let Some(off) = live.remove(id) {
                    assert!(heap.free_at(off).freed(), "valid free must succeed");
                }
            }
            _ => {}
        }
    }
    assert!(heap.growth_events() > 0, "p2c must trigger growth");
    assert!(
        heap.committed_bytes() < fixed_span / 4,
        "adaptive commit {} should be far below fixed {}",
        heap.committed_bytes(),
        fixed_span
    );
}

/// Protection is monotone in M: sweeping the dial upward never hurts
/// overflow survival (statistically, with generous margins).
#[test]
fn m_dial_monotone_protection() {
    let espresso = profile_by_name("espresso").unwrap();
    let injection = Injection::Underflow {
        rate: 0.05,
        min_size: 32,
        shrink_by: 16,
    };
    let survival = |m: f64| -> usize {
        let mut ok = 0;
        for run in 0..10u64 {
            let prog = espresso.generate(0.02, 800 + run);
            let bad = inject(&prog, &injection, 900 + run);
            let config = HeapConfig::default()
                .with_region_bytes(1 << 20)
                .with_multiplier(m);
            if (System::DieHard { config, seed: run })
                .evaluate(&bad)
                .is_correct()
            {
                ok += 1;
            }
        }
        ok
    };
    let low = survival(1.1);
    let high = survival(8.0);
    assert!(
        high + 2 >= low,
        "M=8 ({high}/10) must not mask materially fewer than M=1.1 ({low}/10)"
    );
    assert!(
        high >= 8,
        "M=8 should survive nearly all runs, got {high}/10"
    );
}

/// §4.4 end-to-end: squid's attack is fully neutralized by the replaced
/// strcpy under every allocator — the overflow never happens.
#[test]
fn bounded_strcpy_neutralizes_squid_everywhere() {
    use diehard::baselines::LeaSimAllocator;
    use diehard::workloads::squid;

    let attack = squid::attack_scenario(16);
    let opts = ExecOptions {
        bounded_strcpy: true,
        ..Default::default()
    };
    let oracle = {
        let mut inf = InfiniteHeap::new();
        match run_program(&mut inf, &attack, &opts) {
            RunOutcome::Completed(o) => o,
            other => panic!("oracle: {other:?}"),
        }
    };
    // Even the corruptible Lea baseline survives once strcpy is bounded —
    // the clamp uses the allocator's own usable_size.
    let mut lea = LeaSimAllocator::new(64 << 20);
    let out = run_program(&mut lea, &attack, &opts);
    assert_eq!(
        verdict(&out, &oracle),
        Verdict::Correct,
        "lea + bounded strcpy"
    );

    let mut dh = DieHardSimHeap::new(HeapConfig::default(), 2).unwrap();
    let out = run_program(&mut dh, &attack, &opts);
    assert_eq!(
        verdict(&out, &oracle),
        Verdict::Correct,
        "diehard + bounded strcpy"
    );
}

/// The replicated voter commits exactly the oracle's bytes for clean
/// multi-chunk outputs (voting never mangles chunk boundaries).
#[test]
fn voter_preserves_multi_chunk_output_exactly() {
    let mut ops = Vec::new();
    // ~24 KB of output: six chunks.
    for i in 0..600u32 {
        ops.push(Op::Alloc { id: i, size: 40 });
        ops.push(Op::Write {
            id: i,
            offset: 0,
            len: 40,
            seed: (i % 200) as u8,
        });
        ops.push(Op::Read {
            id: i,
            offset: 0,
            len: 40,
        });
    }
    let prog = Program::new("chunky", ops);
    let oracle = oracle_output(&prog);
    assert!(oracle.chunk_count() >= 5, "want a multi-chunk output");
    let set = ReplicaSet::new(3, 0xC0FFEE, HeapConfig::default());
    match set.run(&prog).outcome {
        ReplicatedOutcome::Agreed(out) => assert_eq!(out, oracle),
        other => panic!("expected agreement, got {other:?}"),
    }
}

/// Double and invalid frees at scale: thousands of erroneous frees leave a
/// DieHard heap fully consistent.
#[test]
fn erroneous_free_storm_leaves_heap_consistent() {
    let mut heap = DieHardSimHeap::new(HeapConfig::default(), 7).unwrap();
    let mut rng = Mwc::seeded(0x5707);
    let mut live = Vec::new();
    for _ in 0..500 {
        if let Some(p) = heap.malloc(8 + rng.below(1000), &[]).unwrap() {
            live.push(p);
        }
    }
    let before = heap.stats().allocs;
    for _ in 0..5000 {
        // Wild, misaligned, and double frees at random.
        let bogus = rng.below(heap.core().heap_span() * 2);
        heap.free(bogus).unwrap();
    }
    // Every legitimately live object must still free exactly once.
    let mut freed = 0;
    for p in live {
        let live_before = heap.core().live_objects();
        heap.free(p).unwrap();
        if heap.core().live_objects() == live_before - 1 {
            freed += 1;
        }
    }
    assert_eq!(heap.stats().allocs, before);
    // The random storm may have legitimately freed a few objects by luck
    // (hitting a live slot start); overwhelmingly most survive.
    assert!(
        freed >= 490,
        "only {freed}/500 survived the bogus-free storm"
    );
    assert_eq!(heap.core().live_objects(), 0);
}

mod magazine_ab {
    //! The sim harness's A/B of the magazine layer against the plain
    //! sharded heap: same master seeds, same logical churn, statistically
    //! indistinguishable placement (the §4.2 uniform-randomness guarantee
    //! the magazine must preserve).

    use diehard::core::magazine::{MagazineCache, MagazineHeap};
    use diehard::core::sharded::ShardedHeap;
    use diehard::prelude::*;

    const CLASS_64B: usize = 3;

    /// The two designs under a common allocation interface.
    trait Driver {
        fn alloc64(&mut self) -> Option<Slot>;
        fn free(&mut self, offset: usize);
        fn offset_of(&self, slot: Slot) -> usize;
    }

    impl Driver for &ShardedHeap {
        fn alloc64(&mut self) -> Option<Slot> {
            self.alloc(64)
        }
        fn free(&mut self, offset: usize) {
            assert!(self.free_at(offset).freed());
        }
        fn offset_of(&self, slot: Slot) -> usize {
            ShardedHeap::offset_of(self, slot)
        }
    }

    impl Driver for (&MagazineHeap, MagazineCache<'_>) {
        fn alloc64(&mut self) -> Option<Slot> {
            self.1.alloc(64)
        }
        fn free(&mut self, offset: usize) {
            self.1.free_at(offset);
        }
        fn offset_of(&self, slot: Slot) -> usize {
            self.0.offset_of(slot)
        }
    }

    /// The shared churn: `ops` 64-byte allocations into a `window`-sized
    /// sliding set with seeded-random evictions, recording every
    /// allocation's slot index.
    fn churn(seed: u64, driver: &mut impl Driver, ops: usize, window: usize) -> Vec<usize> {
        let mut rng = Mwc::seeded(seed ^ 0x51AB);
        let mut live = Vec::new();
        let mut indices = Vec::with_capacity(ops);
        for _ in 0..ops {
            let slot = driver
                .alloc64()
                .expect("64 B class cannot exhaust under this window");
            indices.push(slot.index);
            live.push(driver.offset_of(slot));
            if live.len() > window {
                let victim = live.swap_remove(rng.below(live.len()));
                driver.free(victim);
            }
        }
        indices
    }

    /// Chi-square over slot indices across many seeds (the acceptance
    /// criterion): bucket every allocation's slot index, accumulate
    /// histograms for both designs over all seeds, and require the
    /// two-sample homogeneity statistic to stay below the α = 0.001
    /// critical value for 31 degrees of freedom (≈ 61.1).
    ///
    /// For the same master seed the statistic is expected to be *tiny*,
    /// not merely sub-critical: both designs accept placements from the
    /// same per-class probe stream, so even though the magazine's batched
    /// refills and buffered frees shift the occupancy state at each draw
    /// (collisions on the dense region below resolve at different stream
    /// offsets), the accepted multisets stay nearly identical. Any refill
    /// scheme that abandoned the partition's own probe loop — carving
    /// deterministic runs, a per-thread cursor, a different RNG — would
    /// cluster each seed's placements away from the sharded reference and
    /// blow far past the bound.
    #[test]
    fn magazine_placement_matches_sharded_distribution() {
        const SEEDS: u64 = 60;
        const BUCKETS: usize = 32;
        const OPS: usize = 600;
        const WINDOW: usize = 300;
        // A dense region — 64 KB gives the 64 B class 1024 slots, 512 live
        // cap — so the ~300-object window keeps occupancy near 40% and the
        // probe loop collides regularly. Collisions are where the two
        // designs' sequences actually diverge: the magazine's batched
        // refills and buffered frees change *which* slots are occupied at
        // each draw. (On a sparse region both would trivially emit the raw
        // RNG stream and the test would compare identical data.)
        let config = HeapConfig::default().with_region_bytes(64 * 1024);
        let capacity = config.capacity(SizeClass::from_index(CLASS_64B));
        let mut sharded_hist = [0u64; BUCKETS];
        let mut magazine_hist = [0u64; BUCKETS];

        for seed in 0..SEEDS {
            let sharded = ShardedHeap::new(config.clone(), seed).unwrap();
            for idx in churn(seed, &mut (&sharded), OPS, WINDOW) {
                sharded_hist[idx * BUCKETS / capacity] += 1;
            }

            let magazine = MagazineHeap::new(config.clone(), seed).unwrap();
            let mut driver = (&magazine, magazine.thread_cache());
            for idx in churn(seed, &mut driver, OPS, WINDOW) {
                magazine_hist[idx * BUCKETS / capacity] += 1;
            }
        }

        let n_sharded: u64 = sharded_hist.iter().sum();
        let n_magazine: u64 = magazine_hist.iter().sum();
        assert_eq!(n_sharded, SEEDS * OPS as u64);
        assert_eq!(n_magazine, SEEDS * OPS as u64);

        let total = (n_sharded + n_magazine) as f64;
        let mut chi2 = 0.0;
        for b in 0..BUCKETS {
            let row = (sharded_hist[b] + magazine_hist[b]) as f64;
            if row == 0.0 {
                continue;
            }
            let exp_sharded = row * n_sharded as f64 / total;
            let exp_magazine = row * n_magazine as f64 / total;
            chi2 += (sharded_hist[b] as f64 - exp_sharded).powi(2) / exp_sharded;
            chi2 += (magazine_hist[b] as f64 - exp_magazine).powi(2) / exp_magazine;
        }
        eprintln!("placement chi-square = {chi2:.2}");
        assert!(
            chi2 < 61.1,
            "placement distributions differ: chi-square {chi2:.2} over {BUCKETS} buckets \
             exceeds the df=31, alpha=0.001 critical value"
        );
    }

    /// Layout statistics A/B for the paper's §3.1 separation claim: after
    /// identical churn, the mean free-gap between live objects must agree
    /// between the designs (the magazine must not cluster placements).
    /// Caches are flushed first so the partition bitmap is live-only.
    #[test]
    fn magazine_layout_statistics_match_sharded() {
        let class = SizeClass::from_index(CLASS_64B);
        let mut gaps = Vec::new();
        for seed in [3u64, 17, 99] {
            let sharded = ShardedHeap::new(HeapConfig::default(), seed).unwrap();
            churn(seed, &mut (&sharded), 300, 16);
            let sharded_gap = sharded
                .with_partition(class, |p| p.mean_live_gap())
                .expect("window keeps ≥ 2 live objects");

            let magazine = MagazineHeap::new(HeapConfig::default(), seed).unwrap();
            let mut driver = (&magazine, magazine.thread_cache());
            churn(seed, &mut driver, 300, 16);
            drop(driver);
            let magazine_gap = magazine
                .with_partition(class, |p| p.mean_live_gap())
                .expect("window keeps ≥ 2 live objects");

            let rel = (sharded_gap - magazine_gap).abs() / sharded_gap;
            assert!(
                rel < 0.35,
                "seed {seed}: mean live gap diverged — sharded {sharded_gap:.1}, \
                 magazine {magazine_gap:.1}"
            );
            gaps.push((sharded_gap, magazine_gap));
        }
        // Both designs keep objects far apart on the sparse region
        // (capacity 16384, ≤ 17 live): gaps of hundreds of slots.
        for (s, m) in gaps {
            assert!(s > 100.0 && m > 100.0, "gaps implausibly small: {s} {m}");
        }
    }
}
