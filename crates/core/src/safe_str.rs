//! Heap-bounded replacements for unsafe C string functions (§4.4).
//!
//! "DieHard replaces these unsafe library functions with variants that do
//! not write beyond the allocated area of heap objects. Each function first
//! checks if the destination pointer lies within the heap (two comparisons).
//! If so, it finds the start of the object by bitmasking the pointer with
//! its size (computed with a bitshift) minus one. DieHard then computes the
//! available space from the pointer to the end of the object (two
//! subtractions)."
//!
//! Notably, the paper replaces the "safe" `strncpy` too: its caller-supplied
//! length bound is itself a bug vector, so DieHard clamps it with the *true*
//! object bound.
//!
//! This module implements the bound computation against [`HeapCore`] and
//! slice-based copy routines shared by the simulated heap; the real global
//! allocator wraps them with raw-pointer entry points.

use crate::config::HeapGeometry;
use crate::engine::HeapCore;

/// Computes the number of bytes available from `offset` to the end of the
/// heap object containing it, via the paper's mask-and-subtract scheme.
///
/// Returns `None` when `offset` lies outside the small-object heap (the
/// paper's variants then fall back to the unchecked behaviour, since the
/// pointer may target a stack or global buffer).
///
/// Note the deliberate fidelity to the paper: the bound comes from the
/// *size class geometry alone* — no liveness check — because `strcpy` must
/// stay two-comparisons-cheap.
///
/// # Examples
///
/// ```
/// use diehard_core::{config::HeapConfig, engine::HeapCore, safe_str::space_to_object_end};
///
/// let mut heap = HeapCore::new(HeapConfig::default(), 1)?;
/// let slot = heap.alloc(100).unwrap(); // rounds to a 128-byte object
/// let off = heap.offset_of(slot);
/// assert_eq!(space_to_object_end(&heap, off), Some(128));
/// assert_eq!(space_to_object_end(&heap, off + 100), Some(28));
/// # Ok::<(), diehard_core::config::ConfigError>(())
/// ```
#[must_use]
pub fn space_to_object_end(heap: &HeapCore, offset: usize) -> Option<usize> {
    space_in_object(heap.geometry(), offset)
}

/// As [`space_to_object_end`], but computed from the precomputed heap
/// geometry alone.
///
/// The bound depends only on the (immutable) geometry — not on any
/// allocation state — so the sharded global allocator computes it **without
/// taking any shard lock**, preserving the paper's two-comparisons-cheap
/// contract for the string functions even under concurrency.
#[must_use]
pub fn space_in_object(geometry: &HeapGeometry, offset: usize) -> Option<usize> {
    // One comparison (`slot_at` range-checks via a shift) plus the mask:
    // inside the heap span?
    let slot = crate::engine::slot_at(geometry, offset)?;
    let size = slot.class.object_size();
    // Mask with (size - 1) to find the object start, subtract twice.
    let object_start = offset & !(size - 1);
    Some(size - (offset - object_start))
}

/// The outcome of a bounded copy: how many payload bytes were written and
/// whether the requested copy had to be truncated to stay inside the
/// destination object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyOutcome {
    /// Bytes of payload actually copied (excluding any NUL terminator).
    pub copied: usize,
    /// `true` when DieHard clamped the copy to prevent a heap overflow.
    pub truncated: bool,
}

/// DieHard's `strcpy`: copies the NUL-terminated prefix of `src` into
/// `dest`, but never more than `dest_space` bytes (the bound computed by
/// [`space_to_object_end`]). The destination is always NUL-terminated when
/// any space exists.
///
/// Returns the copy outcome; a `truncated` result is precisely the case
/// where glibc's `strcpy` would have overflowed the heap object.
pub fn bounded_strcpy(dest: &mut [u8], dest_space: usize, src: &[u8]) -> CopyOutcome {
    let src_len = src.iter().position(|&b| b == 0).unwrap_or(src.len());
    bounded_copy(dest, dest_space, &src[..src_len])
}

/// DieHard's `strncpy`: like [`bounded_strcpy`] but additionally limited by
/// the caller's length argument `n` — which is *clamped* by the true object
/// bound, because "programmers can inadvertently specify an incorrect
/// length" (§4.4).
pub fn bounded_strncpy(dest: &mut [u8], dest_space: usize, src: &[u8], n: usize) -> CopyOutcome {
    let src_len = src.iter().position(|&b| b == 0).unwrap_or(src.len());
    let want = src_len.min(n);
    bounded_copy(dest, dest_space, &src[..want])
}

fn bounded_copy(dest: &mut [u8], dest_space: usize, payload: &[u8]) -> CopyOutcome {
    let space = dest_space.min(dest.len());
    if space == 0 {
        return CopyOutcome {
            copied: 0,
            truncated: !payload.is_empty(),
        };
    }
    // Reserve one byte for the terminator.
    let room = space - 1;
    let n = payload.len().min(room);
    dest[..n].copy_from_slice(&payload[..n]);
    dest[n] = 0;
    CopyOutcome {
        copied: n,
        truncated: n < payload.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HeapConfig;
    use proptest::prelude::*;

    fn heap() -> HeapCore {
        HeapCore::new(HeapConfig::default(), 42).unwrap()
    }

    #[test]
    fn space_full_object() {
        let mut h = heap();
        for req in [8usize, 33, 4097] {
            let slot = h.alloc(req).unwrap();
            let off = h.offset_of(slot);
            assert_eq!(space_to_object_end(&h, off), Some(slot.size()));
        }
    }

    #[test]
    fn space_interior_pointer() {
        let mut h = heap();
        let slot = h.alloc(256).unwrap();
        let off = h.offset_of(slot);
        assert_eq!(space_to_object_end(&h, off + 200), Some(56));
        assert_eq!(space_to_object_end(&h, off + 255), Some(1));
    }

    #[test]
    fn space_outside_heap() {
        let h = heap();
        assert_eq!(space_to_object_end(&h, h.heap_span()), None);
        assert_eq!(space_to_object_end(&h, usize::MAX), None);
    }

    #[test]
    fn strcpy_fits() {
        let mut dest = [0xAAu8; 16];
        let out = bounded_strcpy(&mut dest, 16, b"hello\0");
        assert_eq!(
            out,
            CopyOutcome {
                copied: 5,
                truncated: false
            }
        );
        assert_eq!(&dest[..6], b"hello\0");
    }

    #[test]
    fn strcpy_truncates_instead_of_overflowing() {
        let mut dest = [0xAAu8; 8];
        let out = bounded_strcpy(&mut dest, 8, b"overflowing string\0");
        assert!(out.truncated);
        assert_eq!(out.copied, 7);
        assert_eq!(dest[7], 0, "always NUL-terminated");
        // Nothing written past the bound: the slice itself is the proof
        // (a real overflow would have needed dest.len() > 8).
    }

    #[test]
    fn strcpy_unterminated_source_bounded_by_slice() {
        let mut dest = [0u8; 32];
        let out = bounded_strcpy(&mut dest, 32, b"no nul here");
        assert_eq!(out.copied, 11);
        assert!(!out.truncated);
    }

    #[test]
    fn strncpy_caller_bound_respected() {
        let mut dest = [0u8; 16];
        let out = bounded_strncpy(&mut dest, 16, b"hello world\0", 5);
        assert_eq!(out.copied, 5);
        assert_eq!(&dest[..6], b"hello\0");
    }

    #[test]
    fn strncpy_lying_caller_clamped_by_object_bound() {
        // The §4.4 scenario: caller says "copy up to 100 bytes" but the
        // object only holds 8.
        let mut dest = [0u8; 8];
        let out = bounded_strncpy(&mut dest, 8, b"aaaaaaaaaaaaaaaaaaaa\0", 100);
        assert!(out.truncated);
        assert_eq!(out.copied, 7);
    }

    #[test]
    fn zero_space_copies_nothing() {
        let mut dest = [0u8; 4];
        let out = bounded_strcpy(&mut dest, 0, b"x\0");
        assert_eq!(out.copied, 0);
        assert!(out.truncated);
    }

    proptest! {
        /// The copy never writes at or past `dest_space`, and always leaves
        /// a NUL inside the bound when space exists.
        #[test]
        fn never_exceeds_bound(
            src in proptest::collection::vec(1u8..255, 0..64),
            space in 0usize..32,
        ) {
            let mut dest = vec![0xEEu8; 64];
            let out = bounded_strcpy(&mut dest, space, &src);
            prop_assert!(out.copied < space.max(1));
            for (i, &b) in dest.iter().enumerate() {
                if i >= space {
                    prop_assert_eq!(b, 0xEE, "byte {} past bound touched", i);
                }
            }
            if space > 0 {
                prop_assert_eq!(dest[out.copied], 0);
            }
        }

        /// strncpy == strcpy when the caller bound is not the binding one.
        #[test]
        fn strncpy_degenerates_to_strcpy(
            src in proptest::collection::vec(1u8..255, 0..32),
        ) {
            let mut a = vec![0u8; 64];
            let mut b = vec![0u8; 64];
            let oa = bounded_strcpy(&mut a, 40, &src);
            let ob = bounded_strncpy(&mut b, 40, &src, usize::MAX);
            prop_assert_eq!(oa, ob);
            prop_assert_eq!(a, b);
        }

        /// Interior-pointer bound plus offset always equals the object size.
        #[test]
        fn interior_bounds_consistent(req in 1usize..=16*1024, delta in 0usize..64) {
            let mut h = heap();
            let slot = h.alloc(req).unwrap();
            let off = h.offset_of(slot);
            let delta = delta % slot.size();
            let space = space_to_object_end(&h, off + delta).unwrap();
            prop_assert_eq!(space + delta, slot.size());
        }
    }
}
