//! Crash-as-value fault model.
//!
//! The paper's experiments observe real programs crashing (segfaults from
//! corrupted boundary tags, hangs from cycled free lists). The simulated
//! substrate surfaces those same events as values so an experiment can run
//! thousands of randomized executions without dying itself.

/// A hardware/runtime fault raised by the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Access to an unmapped or guard-protected address — the sim analogue
    /// of SIGSEGV.
    Segv {
        /// The faulting simulated address.
        addr: usize,
    },
    /// The allocator's internal metadata was found in an impossible state
    /// (e.g. a corrupted chunk header failed a consistency check that
    /// dlmalloc would have crashed on).
    CorruptMetadata {
        /// Address of the corrupt metadata word.
        addr: usize,
        /// Short description of the check that failed.
        what: &'static str,
    },
    /// The allocator ran into unbounded work (e.g. walking a cycled free
    /// list) — the sim analogue of an infinite loop, detected by a step
    /// budget.
    Livelock,
}

impl core::fmt::Display for Fault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Fault::Segv { addr } => write!(f, "segmentation fault at {addr:#x}"),
            Fault::CorruptMetadata { addr, what } => {
                write!(f, "heap metadata corruption at {addr:#x}: {what}")
            }
            Fault::Livelock => write!(f, "allocator livelock (cycled metadata)"),
        }
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(Fault::Segv { addr: 0x1000 }.to_string().contains("0x1000"));
        let c = Fault::CorruptMetadata {
            addr: 8,
            what: "bad size",
        };
        assert!(c.to_string().contains("bad size"));
        assert!(Fault::Livelock.to_string().contains("livelock"));
    }

    #[test]
    fn faults_are_comparable() {
        assert_eq!(Fault::Livelock, Fault::Livelock);
        assert_ne!(Fault::Segv { addr: 1 }, Fault::Segv { addr: 2 });
    }
}
