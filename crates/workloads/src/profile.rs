//! Allocation-profile-driven workload generation.
//!
//! The paper evaluates on real C programs; what the evaluation *measures*,
//! though, is allocator behaviour, which is a function of each program's
//! allocation profile: how often it allocates, what sizes, how long objects
//! live, and how much non-allocation work dilutes the allocator's cost.
//! [`Profile`] captures those dimensions and [`Profile::generate`] expands
//! one deterministically into a [`Program`].
//!
//! The two benchmark families:
//!
//! * **Allocation-intensive** (cfrac, espresso, lindsay, p2c, roboop) —
//!   "perform between 100,000 and 1,700,000 memory operations per second"
//!   (§7.1): tiny compute per memory op.
//! * **General-purpose** (SPECint2000-like) — allocator cost diluted by
//!   application work; `253.perlbmk` "spend[s] around 12.5% of its
//!   execution doing memory operations" and `300.twolf` "uses a wide range
//!   of object sizes" (§7.2.1).

use diehard_core::rng::Mwc;
use diehard_runtime::ops::{Op, Program};

/// An object-size distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum SizeDist {
    /// Uniform over `[lo, hi]`.
    Uniform(usize, usize),
    /// Weighted choice among `(size, weight)` pairs.
    Choice(Vec<(usize, f64)>),
    /// Geometric-ish spread over powers of two in `[lo, hi]` — the
    /// "wide range of object sizes" shape (twolf).
    PowersOfTwo(usize, usize),
}

impl SizeDist {
    fn sample(&self, rng: &mut Mwc) -> usize {
        match self {
            SizeDist::Uniform(lo, hi) => lo + rng.below(hi - lo + 1),
            SizeDist::Choice(pairs) => {
                let total: f64 = pairs.iter().map(|(_, w)| w).sum();
                let mut x = rng.next_f64() * total;
                for (size, w) in pairs {
                    if x < *w {
                        return *size;
                    }
                    x -= w;
                }
                pairs.last().expect("non-empty choice").0
            }
            SizeDist::PowersOfTwo(lo, hi) => {
                let lo_log = lo.next_power_of_two().trailing_zeros();
                let hi_log = hi.next_power_of_two().trailing_zeros();
                let exp = lo_log + rng.below((hi_log - lo_log + 1) as usize) as u32;
                // Scatter within the class to avoid perfectly uniform sizes.
                let base = 1usize << exp;
                (base / 2 + 1 + rng.below(base / 2)).max(*lo)
            }
        }
    }
}

/// A benchmark's allocation profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Benchmark name (matches the paper's figures).
    pub name: &'static str,
    /// Number of allocations at scale 1.0.
    pub allocations: usize,
    /// Object-size distribution.
    pub sizes: SizeDist,
    /// Mean object lifetime, in allocations. Lifetimes are sampled
    /// geometrically around this mean.
    pub mean_lifetime: usize,
    /// Compute units executed between memory operations: ~0 for the
    /// allocation-intensive suite, large for SPEC-style programs.
    pub compute_per_op: u32,
    /// Fraction of allocations that are also read back (producing output).
    pub read_fraction: f64,
    /// Whether the program contains a genuine uninitialized read (lindsay
    /// does, §7.2.3: "lindsay ... has an uninitialized read error that
    /// DieHard detects and terminates").
    pub uninit_read_bug: bool,
}

impl Profile {
    /// Expands the profile into a deterministic program.
    ///
    /// `scale` multiplies the allocation count (benches use small scales
    /// for iteration speed); `seed` fixes the op stream.
    #[must_use]
    pub fn generate(&self, scale: f64, seed: u64) -> Program {
        let n = ((self.allocations as f64 * scale) as usize).max(16);
        let mut rng = Mwc::seeded(seed ^ 0xB16_B00B5);
        let mut ops: Vec<Op> = Vec::with_capacity(n * 4);
        // (death_time, id) min-heap via sorted insertion into a Vec —
        // deterministic and fast enough for generation.
        let mut deaths: std::collections::BinaryHeap<core::cmp::Reverse<(usize, u32)>> =
            std::collections::BinaryHeap::new();
        let mut live: Vec<(u32, usize)> = Vec::new();

        // A handful of long-lived "global" structures, written once.
        for g in 0..4u32 {
            let id = u32::MAX - g;
            ops.push(Op::Alloc { id, size: 1024 });
            ops.push(Op::Write {
                id,
                offset: 0,
                len: 1024,
                seed: 0xEE,
            });
            live.push((id, 1024));
        }

        let mut uninit_done = !self.uninit_read_bug;
        for i in 0..n {
            let id = i as u32;
            let size = self.sizes.sample(&mut rng);
            ops.push(Op::Alloc { id, size });
            // Initialize most of the object (capped write cost).
            let init_len = size.min(256);
            ops.push(Op::Write {
                id,
                offset: 0,
                len: init_len,
                seed: (i % 251) as u8,
            });
            live.push((id, init_len));

            // lindsay's bug: one read of memory that was never written,
            // planted mid-run.
            if !uninit_done && i >= n / 2 && size >= 264 {
                ops.push(Op::Read {
                    id,
                    offset: 256,
                    len: 8,
                });
                uninit_done = true;
            }

            if self.compute_per_op > 0 {
                ops.push(Op::Compute {
                    units: self.compute_per_op,
                });
            }
            if rng.chance(self.read_fraction) && !live.is_empty() {
                // Read back initialized bytes only: clean workloads contain
                // no out-of-bounds or uninitialized reads by construction.
                let (target, written) = live[rng.below(live.len())];
                ops.push(Op::Read {
                    id: target,
                    offset: 0,
                    len: written.min(16),
                });
            }

            // Schedule this object's death: geometric around mean_lifetime.
            let lifetime = Self::geometric(&mut rng, self.mean_lifetime);
            deaths.push(core::cmp::Reverse((i + lifetime, id)));

            // Reap everything scheduled to die by now.
            while let Some(&core::cmp::Reverse((t, dead))) = deaths.peek() {
                if t > i {
                    break;
                }
                deaths.pop();
                ops.push(Op::Free { id: dead });
                ops.push(Op::Forget { id: dead });
                live.retain(|&(x, _)| x != dead);
            }
        }
        // Programs exit without freeing the stragglers (like real ones).
        Program::new(self.name, ops)
    }

    /// Geometric sample with the given mean (at least 1).
    fn geometric(rng: &mut Mwc, mean: usize) -> usize {
        if mean <= 1 {
            return 1;
        }
        let p = 1.0 / mean as f64;
        let u = rng.next_f64().max(f64::MIN_POSITIVE);
        ((u.ln() / (1.0 - p).ln()).ceil() as usize).clamp(1, mean * 20)
    }
}

/// The five allocation-intensive benchmarks of Figure 5 (§7.1).
#[must_use]
pub fn alloc_intensive_suite() -> Vec<Profile> {
    vec![
        // cfrac: continued-fraction factoring; tiny bignum limbs allocated
        // and freed at an extreme rate.
        Profile {
            name: "cfrac",
            allocations: 30_000,
            sizes: SizeDist::Choice(vec![(8, 0.3), (16, 0.4), (24, 0.2), (40, 0.1)]),
            mean_lifetime: 8,
            compute_per_op: 2,
            read_fraction: 0.4,
            uninit_read_bug: false,
        },
        // espresso: logic minimizer; varied small-to-medium cube sets with
        // phase-like lifetimes.
        Profile {
            name: "espresso",
            allocations: 24_000,
            sizes: SizeDist::Choice(vec![
                (16, 0.25),
                (40, 0.25),
                (112, 0.2),
                (280, 0.15),
                (512, 0.15),
            ]),
            mean_lifetime: 40,
            compute_per_op: 4,
            read_fraction: 0.35,
            uninit_read_bug: false,
        },
        // lindsay: hypercube simulator — carries a real uninitialized read.
        Profile {
            name: "lindsay",
            allocations: 20_000,
            sizes: SizeDist::Uniform(24, 600),
            mean_lifetime: 60,
            compute_per_op: 3,
            read_fraction: 0.3,
            uninit_read_bug: true,
        },
        // p2c: translator; strings and AST nodes, longer-lived.
        Profile {
            name: "p2c",
            allocations: 18_000,
            sizes: SizeDist::Choice(vec![(24, 0.3), (64, 0.3), (128, 0.2), (256, 0.2)]),
            mean_lifetime: 150,
            compute_per_op: 5,
            read_fraction: 0.3,
            uninit_read_bug: false,
        },
        // roboop: robotics matrices; rhythmic small-matrix churn.
        Profile {
            name: "roboop",
            allocations: 26_000,
            sizes: SizeDist::Choice(vec![(48, 0.4), (96, 0.3), (192, 0.3)]),
            mean_lifetime: 4,
            compute_per_op: 3,
            read_fraction: 0.45,
            uninit_read_bug: false,
        },
    ]
}

/// The SPECint2000-like general-purpose profiles (§7.2.1). Allocator cost
/// is diluted by heavy per-op compute; `253.perlbmk` is the
/// allocation-intensive outlier and `300.twolf` the wide-size-range one.
#[must_use]
pub fn spec_suite() -> Vec<Profile> {
    let mk = |name, allocations, sizes, mean_lifetime, compute_per_op, read_fraction| Profile {
        name,
        allocations,
        sizes,
        mean_lifetime,
        compute_per_op,
        read_fraction,
        uninit_read_bug: false,
    };
    vec![
        mk(
            "164.gzip",
            600,
            SizeDist::Choice(vec![(4096, 0.5), (16_384, 0.3), (65_536, 0.2)]),
            400,
            2000,
            0.2,
        ),
        mk("175.vpr", 3_000, SizeDist::Uniform(16, 512), 800, 400, 0.25),
        mk(
            "176.gcc",
            9_000,
            SizeDist::PowersOfTwo(16, 4096),
            300,
            150,
            0.25,
        ),
        mk(
            "181.mcf",
            400,
            SizeDist::Choice(vec![(40, 0.5), (16_384, 0.25), (131_072, 0.25)]),
            350,
            3000,
            0.2,
        ),
        mk(
            "186.crafty",
            300,
            SizeDist::Uniform(64, 2048),
            280,
            4000,
            0.2,
        ),
        mk(
            "197.parser",
            12_000,
            SizeDist::Choice(vec![(16, 0.5), (40, 0.3), (120, 0.2)]),
            60,
            120,
            0.3,
        ),
        mk("252.eon", 8_000, SizeDist::Uniform(24, 320), 100, 180, 0.3),
        mk(
            "253.perlbmk",
            20_000,
            SizeDist::Choice(vec![(16, 0.3), (32, 0.3), (64, 0.2), (520, 0.2)]),
            90,
            25,
            0.3,
        ),
        mk(
            "254.gap",
            700,
            SizeDist::Choice(vec![(32, 0.4), (8192, 0.3), (65_536, 0.3)]),
            500,
            2500,
            0.2,
        ),
        mk(
            "255.vortex",
            7_000,
            SizeDist::Uniform(40, 800),
            250,
            200,
            0.3,
        ),
        mk(
            "256.bzip2",
            350,
            SizeDist::Choice(vec![(16_384, 0.4), (65_536, 0.4), (262_144, 0.2)]),
            300,
            3500,
            0.2,
        ),
        // twolf: "uses a wide range of object sizes", spreading accesses
        // across many size-class partitions.
        mk(
            "300.twolf",
            10_000,
            SizeDist::PowersOfTwo(8, 16_384),
            200,
            80,
            0.3,
        ),
    ]
}

/// Looks up a profile by name across both suites.
#[must_use]
pub fn profile_by_name(name: &str) -> Option<Profile> {
    alloc_intensive_suite()
        .into_iter()
        .chain(spec_suite())
        .find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diehard_core::config::HeapConfig;
    use diehard_runtime::{oracle_output, run_program, verdict, ExecOptions, System, Verdict};
    use diehard_sim::DieHardSimHeap;

    #[test]
    fn generation_is_deterministic() {
        let p = &alloc_intensive_suite()[0];
        assert_eq!(p.generate(0.05, 1), p.generate(0.05, 1));
        assert_ne!(p.generate(0.05, 1), p.generate(0.05, 2));
    }

    #[test]
    fn scale_controls_alloc_count() {
        let p = &alloc_intensive_suite()[1];
        let small = p.generate(0.01, 1);
        let big = p.generate(0.1, 1);
        assert!(big.alloc_count() > small.alloc_count() * 5);
    }

    #[test]
    fn all_profiles_run_correctly_on_diehard_and_libc() {
        for p in alloc_intensive_suite().iter().chain(&spec_suite()) {
            if p.uninit_read_bug {
                continue; // lindsay handled separately
            }
            let prog = p.generate(0.01, 7);
            let oracle = oracle_output(&prog);
            let mut dh = DieHardSimHeap::new(HeapConfig::default(), 3).unwrap();
            let out = run_program(&mut dh, &prog, &ExecOptions::default());
            assert_eq!(
                verdict(&out, &oracle),
                Verdict::Correct,
                "{} on diehard",
                p.name
            );
            assert_eq!(
                System::Libc.evaluate(&prog),
                Verdict::Correct,
                "{} on libc",
                p.name
            );
        }
    }

    #[test]
    fn lifetimes_follow_the_profile() {
        // cfrac's objects die fast; p2c's live long.
        let suites = alloc_intensive_suite();
        let cfrac = suites[0].generate(0.05, 3);
        let p2c = suites[3].generate(0.05, 3);
        let mean_life = |prog: &Program| {
            let log = diehard_inject_stub::trace(prog);
            let (mut sum, mut n) = (0u64, 0u64);
            for r in log {
                if let Some(f) = r.1 {
                    sum += f - r.0;
                    n += 1;
                }
            }
            sum as f64 / n.max(1) as f64
        };
        assert!(mean_life(&cfrac) * 4.0 < mean_life(&p2c));
    }

    /// Minimal local tracer (the real one lives in diehard-inject; kept
    /// separate to avoid a dependency cycle).
    mod diehard_inject_stub {
        use diehard_runtime::ops::{Op, Program};
        pub fn trace(p: &Program) -> Vec<(u64, Option<u64>)> {
            let mut clock = 0u64;
            let mut at: std::collections::HashMap<u32, usize> = Default::default();
            let mut recs: Vec<(u64, Option<u64>)> = Vec::new();
            for op in &p.ops {
                match op {
                    Op::Alloc { id, .. } => {
                        at.insert(*id, recs.len());
                        recs.push((clock, None));
                        clock += 1;
                    }
                    Op::Free { id } => {
                        if let Some(&i) = at.get(id) {
                            if recs[i].1.is_none() {
                                recs[i].1 = Some(clock);
                            }
                        }
                    }
                    _ => {}
                }
            }
            recs
        }
    }

    #[test]
    fn alloc_intensity_contrast() {
        // The defining difference between the suites: memory ops per
        // compute unit.
        let cfrac = &alloc_intensive_suite()[0];
        let gzip = &spec_suite()[0];
        assert!(cfrac.compute_per_op * 100 < gzip.compute_per_op);
    }

    #[test]
    fn lindsay_has_the_uninit_bug_and_is_detected_by_replicas() {
        let lindsay = profile_by_name("lindsay").unwrap();
        let prog = lindsay.generate(0.02, 11);
        let set = diehard_runtime::ReplicaSet::new(3, 5, HeapConfig::default());
        let run = set.run(&prog);
        assert!(
            matches!(
                run.outcome,
                diehard_runtime::ReplicatedOutcome::Divergence { .. }
            ),
            "lindsay's uninit read must be detected, got {:?}",
            run.outcome
        );
    }

    #[test]
    fn profile_lookup() {
        assert!(profile_by_name("espresso").is_some());
        assert!(profile_by_name("300.twolf").is_some());
        assert!(profile_by_name("nope").is_none());
    }

    #[test]
    fn size_dists_sample_within_bounds() {
        let mut rng = Mwc::seeded(1);
        for _ in 0..1000 {
            let u = SizeDist::Uniform(10, 20).sample(&mut rng);
            assert!((10..=20).contains(&u));
            let p = SizeDist::PowersOfTwo(8, 1024).sample(&mut rng);
            assert!((8..=1024).contains(&p), "got {p}");
            let c = SizeDist::Choice(vec![(8, 1.0), (16, 1.0)]).sample(&mut rng);
            assert!(c == 8 || c == 16);
        }
    }
}
