//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so this shim implements
//! the exact surface the workspace's ~12 property-test sites use: the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`]
//! macros, [`strategy::Strategy`] over integer/float ranges, tuples,
//! [`Just`], [`any`], and [`collection::vec`] / [`collection::hash_set`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its inputs (via the normal
//!   panic message) but is not minimized;
//! * **Deterministic seeding** — cases derive from a hash of the test path
//!   and the case index, so failures always reproduce; set
//!   `PROPTEST_CASES` to raise or lower the per-test case count
//!   (default 32).
//!
//! Swap this for the real `proptest` by editing one line in the workspace
//! `Cargo.toml` when online; no test source changes are needed.

#![warn(missing_docs)]

pub mod strategy;

pub mod collection;

pub mod test_runner;

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

pub use strategy::{any, Just, Strategy};

/// Number of cases each property runs (override with `PROPTEST_CASES`).
#[must_use]
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// FNV-1a hash of a test path, mixed with the case index to seed each case.
#[must_use]
pub fn case_seed(path: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments [`case_count`] times.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __path = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..$crate::case_count() {
                    let mut __rng = $crate::test_runner::TestRng::new(
                        $crate::case_seed(__path, __case),
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Asserts a condition inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (no shrinking: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Picks uniformly among the given strategies (all yielding one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}
