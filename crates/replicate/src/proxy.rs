//! The TCP transport: a replicated network front end (§5.2's squid
//! scenario, served for real).
//!
//! [`Proxy::run`] accepts client connections on a loopback listener and
//! gives **each connection its own N-replica set**: the client's request
//! bytes are broadcast to the replicas' stdins through the session's
//! bounded window, the replicas' stdouts are voted at the same per-chunk
//! barriers as the pipe path, and only quorum bytes are written back to
//! the client. A replica corrupted by a memory error is outvoted and
//! SIGKILLed mid-connection while the response keeps streaming; an
//! unresolvable divergence (no strict plurality) closes the connection
//! early — the client sees the committed prefix, then EOF — and is logged
//! and counted in the [`ProxySummary`].
//!
//! Many sessions are multiplexed over **one** [`Reactor`]: each round the
//! proxy re-registers the listener, every session's replica pipes (via
//! [`Session::register_interest`]), each client socket's read side when
//! that session's window wants input, and each client socket's write side
//! while voted bytes are queued. Per-connection memory is bounded end to
//! end: the session keeps at most `(2 × replicas + 1) × chunk` bytes
//! (window + stdout chunks + stderr captures), and the proxy's outbound
//! queue is capped at `out_cap` — once a slow reader fills it, the proxy
//! stops pumping that session, its full stdout chunks stop being polled,
//! and the kernel pipes throttle the replicas themselves. Backpressure
//! propagates to the client's *input* too: the window is refilled only
//! when every replica has consumed it, so a fast sender just fills the
//! kernel's TCP receive buffer.
//!
//! Accept-time cost is optional: with a warm [`Pool`] configured
//! ([`Proxy::with_pool`]), complete replica sets are pre-spawned in the
//! background — one per reactor tick — and an accepted connection takes a
//! ready set in O(1) instead of paying the ~3.5 ms fork/exec
//! (`proxy_conn_latency` vs `proxy_conn_latency_warm` in the perf
//! trajectory). Parked sets stay registered with the same reactor so a
//! replica that dies while idle is reaped and replaced, never handed out,
//! and the pool's seed discipline keeps vote outcomes bit-identical to
//! the cold path.
//!
//! Clients speak write-then-read: send the whole request, half-close with
//! `shutdown(SHUT_WR)` ([`crate::net::shutdown_write`]), then read the
//! voted response to EOF. (Responses flush at chunk barriers, so
//! request/response lockstep would deadlock on partial chunks — the same
//! §5.2 full-pipe-buffer rule the pipe path inherits.) A client that
//! disconnects mid-stream costs only its own session: the write error
//! aborts it, SIGKILLing and reaping that connection's replicas, while
//! every other connection keeps streaming.

use crate::net::Listener;
use crate::pool::{Pool, PoolStats};
use crate::reactor::Reactor;
use crate::session::{Phase, Session, SessionIo, StreamOutcome};
use crate::LaunchConfig;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// What a proxy `pollfd` entry refers to.
#[derive(Debug, Clone, Copy)]
enum Token {
    /// The accept socket.
    Listener,
    /// Connection `slot`'s client socket, read side (request bytes).
    ClientIn(usize),
    /// Connection `slot`'s client socket, write side (voted response).
    ClientOut(usize),
    /// Connection `slot`'s replica pipe.
    Replica(usize, SessionIo),
    /// A *parked* warm-pool replica set's stdout (liveness watch), keyed
    /// by the set's stable id — queue positions go stale within a round.
    Pool(u64),
}

/// One client connection and its replica session.
struct Conn {
    id: u64,
    stream: TcpStream,
    /// The per-replica seeds this connection's set runs with (surfaced in
    /// the report so tests can pin pool-vs-cold seed discipline).
    seeds: Vec<u64>,
    session: Session,
    /// Voted bytes not yet written to the client (≤ `out_cap` + one chunk).
    out: Vec<u8>,
    /// Highest `out` fill observed (test hook for the backpressure bound).
    out_peak: usize,
    /// The client half-closed its write side: the request is complete.
    request_done: bool,
    /// The session has drained and been finalized.
    outcome: Option<StreamOutcome>,
    /// The connection died early (client disconnect / socket error).
    aborted: bool,
}

/// How one voted connection ended.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Monotonic connection id (accept order, from 0).
    pub conn_id: u64,
    /// The session's outcome — `None` when the connection was aborted
    /// before its streams resolved (client disconnect).
    pub outcome: Option<StreamOutcome>,
    /// Response bytes actually written to the client.
    pub sent: u64,
    /// Highest proxy-side outbound-queue fill observed (≤ cap + chunk).
    pub out_peak: usize,
    /// The client vanished mid-stream and the session was SIGKILL-reaped.
    pub aborted: bool,
    /// The per-replica seeds this connection's set ran with, in replica
    /// order (empty when the spawn itself failed). Identical whether the
    /// set came warm from the pool or was cold-spawned — the determinism
    /// pin for `--pool 0` vs `--pool N`.
    pub seeds: Vec<u64>,
}

/// Totals for one [`Proxy::run`] lifetime.
#[derive(Debug, Clone, Default)]
pub struct ProxySummary {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections whose vote hit an unresolvable divergence.
    pub diverged: u64,
    /// Connections aborted by client disconnect or socket error.
    pub aborted: u64,
    /// Warm-pool lifetime counters (all zero when `--pool 0`, except
    /// [`PoolStats::cold_spawns`] counting every connection).
    pub pool: PoolStats,
    /// Per-connection reports, in completion order.
    pub reports: Vec<SessionReport>,
}

/// A replicated TCP front end: one listener, one reactor, many voted
/// sessions.
#[derive(Debug)]
pub struct Proxy {
    listener: Listener,
    config: LaunchConfig,
    out_cap: usize,
    next_id: u64,
    /// The warm replica-set pool (depth 0 = cold spawns only, the
    /// byte-identical legacy path).
    pool: Pool,
    /// Print the pool stats line on every retired connection.
    log_pool_stats: bool,
}

impl Proxy {
    /// Default outbound-queue cap, in chunks (so the per-connection bound
    /// scales with the configured barrier granularity).
    pub const DEFAULT_OUT_CAP_CHUNKS: usize = 4;

    /// Wraps a bound [`Listener`]. `config` describes the replica set
    /// spawned per connection (`config.input` is ignored; explicit
    /// `config.seeds` are reused for every connection — deterministic
    /// test/bench mode — while empty seeds draw fresh entropy per
    /// connection, the paper's production mode).
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidInput`] for an out-of-range
    /// `config.chunk` (validated here so `run` can't fail per-connection).
    pub fn new(listener: Listener, config: LaunchConfig) -> io::Result<Self> {
        let chunk = config.validated_chunk()?;
        let pool = Pool::new(config.clone(), 0)?;
        Ok(Self {
            listener,
            config,
            out_cap: Self::DEFAULT_OUT_CAP_CHUNKS * chunk,
            next_id: 0,
            pool,
            log_pool_stats: false,
        })
    }

    /// Overrides the per-connection outbound-queue cap (bytes; floored at
    /// one chunk so a single commit always fits).
    #[must_use]
    pub fn with_out_cap(mut self, bytes: usize) -> Self {
        self.out_cap = bytes.max(self.config.chunk);
        self
    }

    /// Sets the warm-pool depth target: up to `depth` complete replica
    /// sets are pre-spawned in the background and handed to accepted
    /// connections in O(1), refilling asynchronously. Depth 0 (the
    /// default) keeps today's cold-spawn path byte-identical. Memory-wise
    /// the pool adds `depth × replicas` parked processes, each with empty
    /// (≤ chunk capacity) buffers.
    #[must_use]
    pub fn with_pool(mut self, depth: usize) -> Self {
        self.pool.set_target(depth);
        self
    }

    /// Enables the per-retired-connection pool stats line on stderr
    /// (`diehard-proxy --pool` turns this on).
    #[must_use]
    pub fn with_pool_stats_log(mut self, on: bool) -> Self {
        self.log_pool_stats = on;
        self
    }

    /// Shared handle on the pool's parked-set count — observers (benches,
    /// the smoke test) spin on it to guarantee a warm hit before timing a
    /// connection.
    #[must_use]
    pub fn pool_gauge(&self) -> Arc<std::sync::atomic::AtomicUsize> {
        self.pool.fill_gauge()
    }

    /// The bound local port (for clients of an ephemeral-port listener).
    ///
    /// # Errors
    ///
    /// Propagates `getsockname(2)` failures.
    pub fn local_port(&self) -> io::Result<u16> {
        self.listener.local_port()
    }

    /// Serves connections until `stop` becomes true, then aborts whatever
    /// is still live (SIGKILL + reap) and returns the summary. Runs on the
    /// calling thread; tests and the `diehard-proxy` binary give it one.
    ///
    /// # Errors
    ///
    /// Propagates `poll(2)` and accept failures; per-connection I/O errors
    /// are folded into that connection's report instead.
    pub fn run(&mut self, stop: &AtomicBool) -> io::Result<ProxySummary> {
        let mut reactor: Reactor<Token> = Reactor::new();
        let mut conns: Vec<Option<Conn>> = Vec::new();
        let mut summary = ProxySummary::default();
        while !stop.load(Ordering::Acquire) {
            // Refill the warm pool toward its target — at most one spawn
            // per tick (the crash-loop/fork-bomb cap), with the pool's own
            // backoff after bad events, and only on ticks with no live
            // connection: a set spawn is milliseconds of fork/exec on this
            // (single) reactor thread, and paying it while a connection is
            // in flight would hand the cold-path latency right back to the
            // client the pool just saved it from. A busy proxy therefore
            // refills between connections; a drained pool under sustained
            // load degrades to cold spawns (pinned by tests/pool.rs), not
            // to head-of-line blocking. A zero-timeout probe of the
            // listener closes the remaining race: a client that has
            // already connected wins over topping up the pool.
            let busy = conns.iter().any(Option::is_some);
            let refill_ok = !busy
                && !matches!(
                    crate::reactor::poll_fd(self.listener.as_raw_fd(), libc::POLLIN, 0),
                    Ok(revents) if revents != 0
                );
            if refill_ok {
                self.pool.refill_step();
            }

            // Pump: resolve satisfied barriers into each connection's
            // outbound queue — unless the queue is over cap (the slow-
            // reader backpressure), and flush what the sockets will take.
            for slot in conns.iter_mut() {
                let Some(conn) = slot else { continue };
                conn.advance(self.out_cap);
                if conn.finished() {
                    summary.note(slot.take().expect("conn is Some"));
                    if self.log_pool_stats {
                        eprintln!("diehard-proxy: {}", self.pool.stats_line());
                    }
                }
            }

            // Re-register the world as it now stands, parked pool sets
            // included (their stdouts are the idle liveness watch).
            reactor.clear();
            reactor.register(self.listener.as_raw_fd(), libc::POLLIN, Token::Listener);
            self.pool
                .register_interest(|fd, events, id| reactor.register(fd, events, Token::Pool(id)));
            for (slot, conn) in conns.iter().enumerate() {
                let Some(conn) = conn else { continue };
                let fd = conn.stream.as_raw_fd();
                if conn.outcome.is_none() && !conn.aborted {
                    conn.session.register_interest(|fd, events, io| {
                        reactor.register(fd, events, Token::Replica(slot, io));
                    });
                    if !conn.request_done && conn.session.wants_input() {
                        reactor.register(fd, libc::POLLIN, Token::ClientIn(slot));
                    }
                }
                if !conn.out.is_empty() {
                    reactor.register(fd, libc::POLLOUT, Token::ClientOut(slot));
                }
            }

            // A finite timeout so the stop flag is honored even when idle;
            // zero while the pool still wants to spawn toward its target
            // (and is allowed to — see `refill_ok` above), so refilling is
            // not throttled to one set per idle tick.
            let timeout = if refill_ok && self.pool.wants_spawn() {
                0
            } else {
                100
            };
            reactor.wait(timeout)?;
            // Parked-set liveness first: a set condemned in this round must
            // be reaped before the accept below can hand anything out.
            for (token, revents) in reactor.ready() {
                if let Token::Pool(id) = token {
                    self.pool.service(id, revents);
                }
            }
            for (token, _revents) in reactor.ready() {
                match token {
                    Token::Pool(_) => {} // handled above
                    Token::Listener => {
                        while let Some(stream) = self.listener.accept()? {
                            summary.accepted += 1;
                            match self.open(stream) {
                                Ok(mut conn) => {
                                    // Eager first read: on loopback the
                                    // request often lands before the accept
                                    // is even dispatched, and picking it up
                                    // now saves the fast path a poll round.
                                    conn.read_request();
                                    match conns.iter_mut().find(|s| s.is_none()) {
                                        Some(free) => *free = Some(conn),
                                        None => conns.push(Some(conn)),
                                    }
                                }
                                // Spawn failure is this connection's
                                // problem, not the proxy's: the dropped
                                // stream closes the client, and the report
                                // records an aborted session.
                                Err((id, e)) => {
                                    eprintln!(
                                        "diehard-proxy: connection {id}: replica spawn failed: {e}"
                                    );
                                    summary.aborted += 1;
                                    summary.reports.push(SessionReport {
                                        conn_id: id,
                                        outcome: None,
                                        sent: 0,
                                        out_peak: 0,
                                        aborted: true,
                                        seeds: Vec::new(),
                                    });
                                }
                            }
                        }
                    }
                    Token::ClientIn(slot) => {
                        if let Some(conn) = conns[slot].as_mut() {
                            conn.read_request();
                        }
                    }
                    Token::ClientOut(slot) => {
                        if let Some(conn) = conns[slot].as_mut() {
                            conn.flush_response();
                        }
                    }
                    Token::Replica(slot, io) => {
                        if let Some(conn) = conns[slot].as_mut() {
                            conn.session.service(io);
                        }
                    }
                }
            }
        }
        // Stop requested: whatever is still live is torn down hard.
        for slot in conns.iter_mut() {
            if let Some(mut conn) = slot.take() {
                if conn.outcome.is_none() {
                    conn.session.abort();
                    conn.aborted = true;
                }
                summary.note(conn);
            }
        }
        summary.pool = self.pool.stats().clone();
        Ok(summary)
    }

    /// Readies a replica session for an accepted client — warm from the
    /// pool in O(1) when one is parked, cold-spawned otherwise (both paths
    /// draw seeds from the same stream). On failure the stream has already
    /// been dropped (closing the client).
    fn open(&mut self, stream: TcpStream) -> Result<Conn, (u64, io::Error)> {
        let id = self.next_id;
        self.next_id += 1;
        match self.pool.acquire() {
            Ok(session) => Ok(Conn {
                id,
                stream,
                seeds: session.seeds().to_vec(),
                session,
                out: Vec::new(),
                out_peak: 0,
                request_done: false,
                outcome: None,
                aborted: false,
            }),
            Err(e) => Err((id, e)),
        }
    }
}

impl Conn {
    /// Pump-then-flush: barriers into the queue (respecting the cap), then
    /// the queue into the socket, finalizing when the session drains.
    fn advance(&mut self, out_cap: usize) {
        if self.outcome.is_none() && !self.aborted && self.out.len() < out_cap {
            let phase = self.session.pump(&mut self.out);
            self.out_peak = self.out_peak.max(self.out.len());
            if phase == Phase::Drained {
                // Everything votable is committed. Flush and half-close
                // toward the client *before* the closing ballots: finalize
                // blocks reaping three replica processes, and the client's
                // EOF should not wait on that bookkeeping. (If the socket
                // won't take the tail yet, the slow-reader path below keeps
                // flushing and the close falls back to retire time.)
                self.flush_response();
                if self.out.is_empty() {
                    let _ = crate::net::shutdown_write(&self.stream);
                }
                let outcome = self.session.finalize();
                if outcome.diverged {
                    eprintln!(
                        "diehard-proxy: connection {}: vote diverged after {} committed bytes; closing",
                        self.id, outcome.committed
                    );
                }
                self.outcome = Some(outcome);
            }
        }
        self.flush_response();
    }

    /// Complete and fully flushed (or dead): the slot can be retired. The
    /// socket closes on drop, which is also the client's EOF.
    fn finished(&self) -> bool {
        self.aborted || (self.outcome.is_some() && self.out.is_empty())
    }

    /// Reads one window's worth of request bytes into the session. EOF is
    /// the client's half-close: the request is complete. A hard error is a
    /// disconnect: the session is aborted and its replicas reaped.
    fn read_request(&mut self) {
        // Reads run in a loop with an eager stdin flush after each window:
        // a small request plus its FIN often arrive together, and the
        // empty replica pipes always take the first window — so the whole
        // request is broadcast in the round that received it instead of
        // burning a poll round each on the FIN and on `POLLOUT` reports.
        let mut buf = vec![0u8; self.session.chunk()];
        while !self.request_done && self.session.wants_input() {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.session.accept_input_eof();
                    self.request_done = true;
                }
                Ok(n) => self.session.accept_input(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.disconnect();
                    return;
                }
            }
            self.session.flush_input();
        }
    }

    /// Writes queued voted bytes to the client. A write error is a
    /// disconnect: this session dies (SIGKILL + reap), nobody else's does.
    fn flush_response(&mut self) {
        while !self.out.is_empty() {
            match self.stream.write(&self.out) {
                Ok(0) => {
                    self.disconnect();
                    return;
                }
                Ok(n) => {
                    self.out.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.disconnect();
                    return;
                }
            }
        }
    }

    /// The client is gone: reap this connection's replicas, drop the
    /// queue, and mark the slot for retirement.
    fn disconnect(&mut self) {
        if self.outcome.is_none() {
            self.session.abort();
        }
        self.out.clear();
        self.aborted = true;
    }
}

impl ProxySummary {
    /// Folds a retired connection into the totals.
    fn note(&mut self, conn: Conn) {
        if conn.aborted {
            self.aborted += 1;
        }
        if conn.outcome.as_ref().is_some_and(|o| o.diverged) {
            self.diverged += 1;
        }
        let sent = conn
            .outcome
            .as_ref()
            .map_or(0, |o| o.committed - conn.out.len() as u64);
        self.reports.push(SessionReport {
            conn_id: conn.id,
            outcome: conn.outcome,
            sent,
            out_peak: conn.out_peak,
            aborted: conn.aborted,
            seeds: conn.seeds,
        });
    }
}
