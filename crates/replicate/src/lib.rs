//! # diehard-replicate
//!
//! Process-level replication (§5): "DieHard spawns each replica in a
//! separate process ... Each replica receives its standard input from
//! DieHard via a pipe ... DieHard manages output from the replicas by
//! periodically synchronizing at barriers. Whenever all currently-live
//! replicas terminate or fill their output buffers (currently 4K each, the
//! unit of transfer of a pipe), the voter compares the contents of each
//! replica's output buffer."
//!
//! The paper's launcher points `LD_PRELOAD` at `libdiehard.so` so every
//! replica gets a differently-seeded allocator. The Rust analogue: child
//! programs link the `diehard_core::global::DieHard` allocator and read
//! their seed from `DIEHARD_SEED`, which this launcher sets uniquely per
//! replica. (An `LD_PRELOAD` passthrough is provided for C binaries.)
//!
//! The [`Voter`] is shared with the launcher binary and unit-testable in
//! isolation; [`run_replicated`] wires it to real processes and pipes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod voter;

pub use voter::{ChunkVote, Voter};

use diehard_core::rng::{entropy_seed, splitmix};
use std::io::{Read, Write};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;

/// The pipe-buffer chunk size the voter compares (§5.2).
pub const CHUNK: usize = 4096;

/// Configuration for a replicated launch.
#[derive(Debug, Clone)]
pub struct LaunchConfig {
    /// Number of replicas (1, or at least 3 — a 1-1 tie cannot be broken).
    pub replicas: usize,
    /// The command and its arguments.
    pub command: Vec<String>,
    /// Bytes broadcast to every replica's standard input.
    pub input: Vec<u8>,
    /// Explicit per-replica seeds; when empty, true-random seeds are drawn
    /// (the paper seeds each replica from `/dev/urandom`).
    pub seeds: Vec<u64>,
    /// Optional path exported as `LD_PRELOAD` for C binaries using the
    /// original interposition mechanism.
    pub preload: Option<String>,
}

impl LaunchConfig {
    /// A config with `replicas` copies of `command`, reading `input`.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is 0 or 2, or `command` is empty.
    #[must_use]
    pub fn new(replicas: usize, command: Vec<String>, input: Vec<u8>) -> Self {
        assert!(replicas != 0, "at least one replica");
        assert!(replicas != 2, "two replicas cannot vote (§6)");
        assert!(!command.is_empty(), "command required");
        Self {
            replicas,
            command,
            input,
            seeds: Vec::new(),
            preload: None,
        }
    }
}

/// The result of a replicated execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicatedExit {
    /// The voted output committed to the caller.
    pub output: Vec<u8>,
    /// Whether the voter detected an unresolvable divergence (the §6.3
    /// uninitialized-read signal): no two replicas agreed on some chunk.
    pub diverged: bool,
    /// Replica indices killed for disagreeing or dying.
    pub killed: Vec<usize>,
}

/// Spawns the replicas, broadcasts stdin, votes on stdout chunks, and
/// returns the committed output.
///
/// # Errors
///
/// Propagates process-spawn and pipe I/O failures. Replica *crashes* are
/// not errors — the voter handles them by decrementing the live set.
pub fn run_replicated(config: &LaunchConfig) -> std::io::Result<ReplicatedExit> {
    let seeds: Vec<u64> = if config.seeds.len() == config.replicas {
        config.seeds.clone()
    } else {
        let master = entropy_seed();
        (0..config.replicas as u64)
            .map(|i| splitmix(master ^ (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect()
    };

    // Spawn all replicas with stdin/stdout piped.
    let mut children: Vec<Child> = Vec::with_capacity(config.replicas);
    for &seed in &seeds {
        let mut cmd = Command::new(&config.command[0]);
        cmd.args(&config.command[1..])
            .env("DIEHARD_SEED", seed.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(ref lib) = config.preload {
            cmd.env("LD_PRELOAD", lib);
        }
        children.push(cmd.spawn()?);
    }

    // Broadcast the input to every replica on its own thread (a slow or
    // dead replica must not stall the others).
    let mut writers = Vec::new();
    for child in &mut children {
        let mut stdin = child.stdin.take().expect("piped stdin");
        let input = config.input.clone();
        writers.push(std::thread::spawn(move || {
            let _ = stdin.write_all(&input); // EPIPE from a dead replica is fine
        }));
    }

    // Stream each replica's stdout in CHUNK units into a channel.
    let (tx, rx) = mpsc::channel::<(usize, Option<Vec<u8>>)>();
    for (idx, child) in children.iter_mut().enumerate() {
        let mut stdout = child.stdout.take().expect("piped stdout");
        let tx = tx.clone();
        std::thread::spawn(move || {
            let mut buf = vec![0u8; CHUNK];
            let mut pending: Vec<u8> = Vec::new();
            loop {
                match stdout.read(&mut buf) {
                    Ok(0) | Err(_) => {
                        // EOF: flush the partial chunk, then signal end.
                        if !pending.is_empty() {
                            let _ = tx.send((idx, Some(std::mem::take(&mut pending))));
                        }
                        let _ = tx.send((idx, None));
                        return;
                    }
                    Ok(n) => {
                        pending.extend_from_slice(&buf[..n]);
                        while pending.len() >= CHUNK {
                            let rest = pending.split_off(CHUNK);
                            let chunk = std::mem::replace(&mut pending, rest);
                            if tx.send((idx, Some(chunk))).is_err() {
                                return;
                            }
                        }
                    }
                }
            }
        });
    }
    drop(tx);

    // Collect chunk streams per replica, then vote. (Barrier semantics:
    // the voter consumes chunk i from every live replica before moving on;
    // buffering whole streams first is equivalent for finite outputs.)
    let mut streams: Vec<Vec<Vec<u8>>> = vec![Vec::new(); config.replicas];
    let mut crashed: Vec<bool> = vec![false; config.replicas];
    while let Ok((idx, msg)) = rx.recv() {
        if let Some(chunk) = msg {
            streams[idx].push(chunk);
        }
    }
    for w in writers {
        let _ = w.join();
    }
    for (idx, child) in children.iter_mut().enumerate() {
        match child.wait() {
            Ok(status) if status.success() => {}
            _ => crashed[idx] = true,
        }
    }

    // Vote chunk-by-chunk over the replicas that produced output and
    // exited cleanly.
    let mut voter = Voter::new(config.replicas);
    for (idx, dead) in crashed.iter().enumerate() {
        if *dead {
            voter.kill(idx);
        }
    }
    let mut output = Vec::new();
    let mut diverged = false;
    let max_chunks = streams.iter().map(Vec::len).max().unwrap_or(0);
    for chunk_idx in 0..max_chunks {
        let ballots: Vec<Option<&[u8]>> = streams
            .iter()
            .map(|s| s.get(chunk_idx).map(Vec::as_slice))
            .collect();
        match voter.vote(&ballots) {
            ChunkVote::Commit(bytes) => output.extend_from_slice(&bytes),
            ChunkVote::Divergence => {
                diverged = true;
                break;
            }
            ChunkVote::AllDone => break,
        }
    }
    // Kill any children still running (e.g. after divergence).
    for child in &mut children {
        let _ = child.kill();
        let _ = child.wait();
    }
    Ok(ReplicatedExit {
        output,
        diverged,
        killed: voter.killed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(script: &str) -> Vec<String> {
        vec!["/bin/sh".into(), "-c".into(), script.into()]
    }

    #[test]
    fn unanimous_replicas_commit_output() {
        let cfg = LaunchConfig::new(3, sh("cat"), b"hello replicated world\n".to_vec());
        let exit = run_replicated(&cfg).unwrap();
        assert!(!exit.diverged);
        assert_eq!(exit.output, b"hello replicated world\n");
        assert!(exit.killed.is_empty());
    }

    #[test]
    fn seed_dependent_output_diverges() {
        // Every replica prints its own seed: no two agree → detected.
        let cfg = LaunchConfig::new(3, sh("echo $DIEHARD_SEED"), Vec::new());
        let exit = run_replicated(&cfg).unwrap();
        assert!(exit.diverged, "distinct outputs must trigger divergence");
    }

    #[test]
    fn majority_outvotes_a_bad_replica() {
        let mut cfg = LaunchConfig::new(
            3,
            sh("if [ \"$DIEHARD_SEED\" = \"7\" ]; then echo bad; else echo good; fi"),
            Vec::new(),
        );
        cfg.seeds = vec![1, 7, 2];
        let exit = run_replicated(&cfg).unwrap();
        assert!(!exit.diverged);
        assert_eq!(exit.output, b"good\n");
        assert_eq!(exit.killed, vec![1], "replica with seed 7 must be killed");
    }

    #[test]
    fn crashing_replica_is_tolerated() {
        let mut cfg = LaunchConfig::new(
            3,
            sh("if [ \"$DIEHARD_SEED\" = \"7\" ]; then exit 139; fi; echo ok"),
            Vec::new(),
        );
        cfg.seeds = vec![7, 1, 2];
        let exit = run_replicated(&cfg).unwrap();
        assert!(!exit.diverged);
        assert_eq!(exit.output, b"ok\n");
        assert!(exit.killed.contains(&0));
    }

    #[test]
    fn single_replica_passthrough() {
        let cfg = LaunchConfig::new(1, sh("cat"), b"solo\n".to_vec());
        let exit = run_replicated(&cfg).unwrap();
        assert_eq!(exit.output, b"solo\n");
    }

    #[test]
    fn large_output_voted_in_chunks() {
        // 3 replicas each emit ~34 KB of identical output: nine chunks,
        // all committed.
        let cfg = LaunchConfig::new(
            3,
            sh("i=0; while [ $i -lt 1000 ]; do echo 'line of deterministic output data'; i=$((i+1)); done"),
            Vec::new(),
        );
        let exit = run_replicated(&cfg).unwrap();
        assert!(!exit.diverged);
        assert_eq!(exit.output.len(), 34_000, "1000 x 34-byte lines");
    }

    #[test]
    #[should_panic(expected = "two replicas cannot vote")]
    fn two_replicas_rejected() {
        let _ = LaunchConfig::new(2, sh("cat"), Vec::new());
    }
}
